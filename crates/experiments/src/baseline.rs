//! The persisted performance baseline: every registered scheme × every
//! named workload, measured once and written to `BENCH_baseline.json` at
//! the workspace root.
//!
//! This is the repo's first durable perf artifact: the `bench_baseline`
//! binary runs the full scheme × workload grid through
//! [`ParallelDriver`] at a fixed network size,
//! records throughput (queries/second, wall clock) next to the simulated
//! metrics (mean/p99 delay, messages per query, MesgRatio), and persists
//! the grid as JSON so future PRs can diff their numbers against a
//! committed trajectory. The simulated metrics are deterministic per seed;
//! only the `qps` column moves with the hardware. `qps` is thereby the
//! **one** metric exempt from the bitwise-reproducibility contract: its
//! wall-clock stopwatch is the workspace's sole audited D2 allowance
//! (`detlint: allow(D2)` at each read — see the "Determinism contract"
//! section of ARCHITECTURE.md), and nothing derived from it feeds back
//! into a simulated metric.
//!
//! Since the dynamics layer landed, the artifact also carries a **churn
//! section**: every dynamic scheme × every [`ChurnPlan`] catalog entry,
//! run epoch-driven through [`ParallelDriver::run_epochs`] with the
//! per-epoch recall/exactness/delay series persisted alongside the merged
//! metrics. Schema v3 adds a **replication section**: the same
//! scheme × plan grid re-run at higher replication factors
//! (`successor-r` placement through the replication layer), with replica
//! recovery visible in the recall/message metrics and the per-epoch
//! repair traffic persisted next to the churn stats. Schema v4 adds a
//! **latency section**: every single-attribute scheme rebuilt under every
//! [`NetModel`] catalog entry from the same seed, so
//! hop metrics pair bit-for-bit across the model axis while the latency
//! columns show the virtual-millisecond cost surface — plus `delay_p95`
//! and `latency_mean` columns on the existing grids (whose v3 metric
//! values are unchanged: under the default `unit` model the cost layer is
//! an observer, never an actor). Schema v5 adds a **hostile section**:
//! every dynamic scheme re-run epoch-driven (frozen membership) under a
//! catalog of hostile-network specs (`lossy-p`, `lossy-p/r3`,
//! `split-brain`, `throttle` — see [`simnet::FaultPlan::named_hostile`]),
//! so the artifact pins recall under loss, the retry premium, the
//! partition timeline, and rate-limit latency pricing. Every v4 metric is
//! unchanged: the hostile grid builds *additional* suffixed schemes and
//! touches none of the existing cells. Schema v6 adds a **scaling
//! section**: four representative schemes ([`SCALING_SCHEMES`]) rebuilt at
//! each `N` in `config.scaling_ns` (`{10³, 10⁴, 10⁵}` at full scale;
//! `10⁶` joins behind the `bench_baseline --huge` flag), with build and
//! publish wall time, query throughput, heap allocations per query (when
//! the `bench-alloc` feature installs the counting allocator; `null`
//! otherwise), and the process peak-RSS proxy (`VmHWM` from
//! `/proc/self/status`; `null` off Linux) committed as scaling curves.
//! Like `qps`, the wall-clock, allocation, and RSS columns are
//! machine/toolchain-dependent and exempt from the bitwise contract; the
//! embedded simulated metrics (delay, messages, results) are not. Every
//! v5 metric is again unchanged — the scaling grid builds additional
//! networks from its own seeds and touches none of the existing cells.
//! Schema v7 surfaces the median on the latency grid: every latency-section
//! row gains `delay_p50` and `latency_p50` was already present — the p50
//! was always computed by [`DriverReport`]'s summaries, v7 just writes it
//! out. Every v6 metric value is bit-for-bit unchanged: v7 adds columns,
//! never touches an existing cell. Schema v8 changes no columns at all —
//! it marks the zero-allocation query hot path (scratch reuse, `Sim`
//! recycling, borrowed fault plans): the scaling section's perf columns
//! (`qps`, `allocs_per_query`, `build_ms`) move, and every simulated
//! metric — delays, messages, results, latency summaries — is bit-for-bit
//! identical to v7, which is exactly the claim the bump records.

use crate::output::Table;
use crate::{dynamic_single_names, standard_registry};
use dht_api::{
    BuildParams, ChurnPlan, DriverReport, EpochSummary, MultiBuildParams, NetModel, ParallelDriver,
    ReplicaPolicy, WorkloadGen, CHURN_PLAN_NAMES, NET_MODEL_NAMES,
};
use rand::Rng;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant; // detlint: allow(D2) — qps stopwatch import; every read annotated below

/// The schema tag written to (and expected in) `BENCH_baseline.json` —
/// bumped whenever the JSON shape changes, and pinned by the CI
/// bench-schema smoke job (`bench_baseline --quick --check-schema`).
pub const SCHEMA_VERSION: &str = "bench-baseline-v8";

/// Hostile-network specs measured in the hostile section: loss alone, the
/// same loss with a 3-attempt retry budget, the two-island partition, and
/// the token-bucket rate limit.
pub const HOSTILE_SPECS: [&str; 4] = ["lossy-p", "lossy-p/r3", "split-brain", "throttle"];

/// Schemes measured in the scaling section: one per substrate family —
/// FissionE/Kautz (`pira`), CAN (`dcf-can`), Chord (`pht-chord`), and the
/// skip graph. Scaling cells always use the paper's ObjectID length and a
/// fixed query count ([`SCALING_QUERIES`]) regardless of quick/full scale,
/// so a cell at a given `N` is comparable across runs — that is what the
/// `bench_baseline --gate-qps` regression gate diffs against.
pub const SCALING_SCHEMES: [&str; 4] = ["pira", "dcf-can", "pht-chord", "skipgraph"];

/// Queries per scaling cell (kept small: at `N = 10⁵`–`10⁶` the point of
/// the section is build/maintenance cost and per-query footprint, not
/// tight quantiles — the main grid owns those).
pub const SCALING_QUERIES: usize = 200;

/// Single-attribute workloads measured in the baseline grid.
pub const SINGLE_WORKLOADS: [&str; 5] = ["uniform", "zipf-hot", "clustered", "wide-scan", "mixed"];

/// Multi-attribute workloads measured for the rectangle schemes.
pub const MULTI_WORKLOADS: [&str; 2] = ["rect-correlated", "mixed"];

/// Baseline run configuration.
#[derive(Debug, Clone)]
pub struct BaselineConfig {
    /// Network size every scheme is built at.
    pub n: usize,
    /// Queries per (scheme, workload) cell.
    pub queries: usize,
    /// Master seed (simulated metrics are a pure function of it).
    pub seed: u64,
    /// Worker threads for the parallel driver.
    pub threads: usize,
    /// ObjectID length for Kautz-named schemes.
    pub object_id_len: usize,
    /// Epochs per churn cell (the churn section splits `queries` evenly
    /// across them).
    pub churn_epochs: usize,
    /// Replication factors measured in the replication section (factor 1
    /// is the unreplicated cross-check against the churn section).
    pub replication_factors: Vec<usize>,
    /// Net models measured in the latency section (the `unit` row is the
    /// hop-metric cross-check against the fault-free grid).
    pub net_models: Vec<String>,
    /// Hostile-network specs measured in the hostile section
    /// (`plan[/rN]` registry-suffix spellings).
    pub hostile_specs: Vec<String>,
    /// Network sizes measured in the scaling section (each
    /// [`SCALING_SCHEMES`] entry is rebuilt and measured at every size).
    pub scaling_ns: Vec<usize>,
}

impl BaselineConfig {
    /// The committed-baseline setup: `N = 1000`, the paper's 1000 queries
    /// per cell.
    pub fn full() -> Self {
        BaselineConfig {
            n: 1000,
            queries: 1000,
            seed: 0xba5e,
            threads: dht_api::default_threads(),
            object_id_len: crate::paper::OBJECT_ID_LEN,
            churn_epochs: 4,
            replication_factors: vec![1, 3],
            net_models: NET_MODEL_NAMES.iter().map(|s| s.to_string()).collect(),
            hostile_specs: HOSTILE_SPECS.iter().map(|s| s.to_string()).collect(),
            scaling_ns: vec![1_000, 10_000, 100_000],
        }
    }

    /// A reduced setup for tests and `--quick` runs.
    pub fn quick() -> Self {
        BaselineConfig {
            n: 250,
            queries: 40,
            object_id_len: 32,
            scaling_ns: vec![100, 250],
            ..BaselineConfig::full()
        }
    }
}

/// One measured cell of the scheme × workload grid.
#[derive(Debug, Clone)]
pub struct BaselineRow {
    /// Registry name of the scheme.
    pub scheme: String,
    /// Query shape: `"single"` or `"rect"`.
    pub shape: &'static str,
    /// Workload name from the catalog.
    pub workload: String,
    /// Wall-clock throughput, queries per second (hardware-dependent).
    pub qps: f64,
    /// The full deterministic metric report for the cell.
    pub report: DriverReport,
}

/// One measured cell of the scheme × net-model latency grid.
#[derive(Debug, Clone)]
pub struct LatencyBaselineRow {
    /// Registry name of the scheme.
    pub scheme: String,
    /// Net model name from the [`NetModel`] catalog.
    pub net: String,
    /// Wall-clock throughput, queries per second (hardware-dependent).
    pub qps: f64,
    /// The full deterministic metric report for the cell (`delay` in hops
    /// — identical across the model axis — and `latency` in virtual ms).
    pub report: DriverReport,
}

/// One measured cell of the dynamic-scheme × churn-plan grid.
#[derive(Debug, Clone)]
pub struct ChurnBaselineRow {
    /// Registry name of the scheme.
    pub scheme: String,
    /// Churn plan name from the [`ChurnPlan`] catalog.
    pub plan: String,
    /// Wall-clock throughput, queries per second (hardware-dependent).
    pub qps: f64,
    /// The merged epoch-driven report (carries the per-epoch series).
    pub report: DriverReport,
    /// Live peers after the final epoch.
    pub final_peers: usize,
}

/// One measured cell of the scheme × plan × replication-factor grid.
#[derive(Debug, Clone)]
pub struct ReplicationBaselineRow {
    /// Registry name of the scheme.
    pub scheme: String,
    /// Churn plan name from the [`ChurnPlan`] catalog.
    pub plan: String,
    /// Replication factor (total copies per record; 1 = unreplicated).
    pub factor: usize,
    /// Canonical replica policy name (`"none"` at factor 1).
    pub policy: String,
    /// Wall-clock throughput, queries per second (hardware-dependent).
    pub qps: f64,
    /// The merged epoch-driven report (per-epoch series included).
    pub report: DriverReport,
    /// Replica copies placed by repair across all epochs.
    pub repair_placed: usize,
    /// Messages spent by repair across all epochs.
    pub repair_messages: u64,
    /// Live peers after the final epoch.
    pub final_peers: usize,
}

/// One measured cell of the dynamic-scheme × hostile-spec grid.
#[derive(Debug, Clone)]
pub struct HostileBaselineRow {
    /// Registry name of the base scheme (no suffixes).
    pub scheme: String,
    /// Hostile spec suffix (`plan[/rN]`) the scheme ran under.
    pub spec: String,
    /// Wall-clock throughput, queries per second (hardware-dependent).
    pub qps: f64,
    /// The merged epoch-driven report (per-epoch series included — the
    /// partition specs' recall timeline lives there).
    pub report: DriverReport,
}

/// One measured cell of the scheme × network-size scaling grid.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Registry name of the scheme.
    pub scheme: String,
    /// Network size the scheme was built at.
    pub n: usize,
    /// Wall-clock milliseconds to build the network (hardware-dependent).
    pub build_ms: f64,
    /// Wall-clock milliseconds to publish `n` records (hardware-dependent).
    pub publish_ms: f64,
    /// Wall-clock throughput, queries per second (hardware-dependent).
    pub qps: f64,
    /// Heap allocations per query, metered over a single-threaded pass by
    /// the `bench-alloc` counting allocator — `None` (JSON `null`) when
    /// the feature is off or the allocator is not installed.
    pub allocs_per_query: Option<f64>,
    /// Process peak resident set (`VmHWM`, KiB) after this cell — a
    /// monotone high-water proxy, `None` off Linux.
    pub peak_rss_kb: Option<u64>,
    /// The full deterministic metric report for the cell.
    pub report: DriverReport,
}

/// A complete baseline run: configuration plus the measured grids.
#[derive(Debug, Clone)]
pub struct BaselineReport {
    /// The configuration the grid ran under.
    pub config: BaselineConfig,
    /// One row per (scheme, workload) cell.
    pub rows: Vec<BaselineRow>,
    /// One row per (single scheme, net model) cell — the uniform workload
    /// re-priced under every cataloged cost model.
    pub latency_rows: Vec<LatencyBaselineRow>,
    /// One row per (dynamic scheme, churn plan) cell — queries under
    /// epoch-driven membership churn.
    pub churn_rows: Vec<ChurnBaselineRow>,
    /// One row per (dynamic scheme, churn plan, replication factor) cell —
    /// the same churn grid behind the replication layer.
    pub replication_rows: Vec<ReplicationBaselineRow>,
    /// One row per (dynamic scheme, hostile spec) cell — frozen membership
    /// under the hostile-network layer.
    pub hostile_rows: Vec<HostileBaselineRow>,
    /// One row per ([`SCALING_SCHEMES`] scheme, network size) cell — the
    /// scaling curves (build/publish time, qps, allocations, peak RSS).
    pub scaling_rows: Vec<ScalingRow>,
}

/// Runs the full grid: every registered single-attribute scheme ×
/// [`SINGLE_WORKLOADS`], every multi-attribute scheme ×
/// [`MULTI_WORKLOADS`] on 2-attribute squares, and every dynamic scheme ×
/// the [`ChurnPlan`] catalog under epoch-driven churn.
///
/// # Panics
///
/// Panics if a scheme fails to build or a fault-free query errs — a
/// baseline with silently missing cells would be worse than no baseline.
pub fn run(cfg: &BaselineConfig) -> BaselineReport {
    let registry = standard_registry();
    let domain = (crate::paper::DOMAIN_LO, crate::paper::DOMAIN_HI);
    let mut rows = Vec::new();

    for name in registry.single_names() {
        let params =
            BuildParams::new(cfg.n, domain.0, domain.1).with_object_id_len(cfg.object_id_len);
        let mut rng = simnet::rng_from_seed(cfg.seed ^ dht_api::fnv1a(name.as_bytes()));
        let mut scheme = registry.build_single(name, &params, &mut rng).expect("scheme builds");
        for h in 0..cfg.n as u64 {
            scheme.publish(rng.gen_range(domain.0..=domain.1), h).expect("publish");
        }
        for wl_name in SINGLE_WORKLOADS {
            let workload = WorkloadGen::named(wl_name, domain).expect("cataloged");
            let driver = ParallelDriver {
                queries: cfg.queries,
                seed: cfg.seed ^ dht_api::fnv1a(wl_name.as_bytes()),
                threads: cfg.threads,
                shard_salt: 0,
                metrics: false,
            };
            #[allow(clippy::disallowed_methods)]
            let start = Instant::now(); // detlint: allow(D2) — qps stopwatch
            let report = driver.run(scheme.as_ref(), &workload).expect("fault-free queries");
            let qps = cfg.queries as f64 / start.elapsed().as_secs_f64().max(1e-9);
            rows.push(BaselineRow {
                scheme: name.to_string(),
                shape: "single",
                workload: wl_name.to_string(),
                qps,
                report,
            });
        }
    }

    let domains = [(0.0, 100.0), (0.0, 100.0)];
    for name in registry.multi_names() {
        let params = MultiBuildParams::new(cfg.n, &domains).with_object_id_len(cfg.object_id_len);
        let mut rng = simnet::rng_from_seed(cfg.seed ^ dht_api::fnv1a(name.as_bytes()) ^ 0xd1);
        let mut scheme = registry.build_multi(name, &params, &mut rng).expect("scheme builds");
        for h in 0..cfg.n as u64 {
            let p = [rng.gen_range(0.0..=100.0), rng.gen_range(0.0..=100.0)];
            scheme.publish_point(&p, h).expect("publish");
        }
        for wl_name in MULTI_WORKLOADS {
            let workload = WorkloadGen::named(wl_name, (0.0, 100.0)).expect("cataloged");
            let driver = ParallelDriver {
                queries: cfg.queries,
                seed: cfg.seed ^ dht_api::fnv1a(wl_name.as_bytes()),
                threads: cfg.threads,
                shard_salt: 0,
                metrics: false,
            };
            #[allow(clippy::disallowed_methods)]
            let start = Instant::now(); // detlint: allow(D2) — qps stopwatch
            let report =
                driver.run_multi(scheme.as_ref(), &domains, &workload).expect("fault-free");
            let qps = cfg.queries as f64 / start.elapsed().as_secs_f64().max(1e-9);
            rows.push(BaselineRow {
                scheme: name.to_string(),
                shape: "rect",
                workload: wl_name.to_string(),
                qps,
                report,
            });
        }
    }

    // Latency section: every single scheme rebuilt under every cataloged
    // net model from the *same* seed (so hop metrics pair bit-for-bit
    // across the model axis; the `unit` row reproduces the fault-free
    // grid's uniform-workload hop numbers exactly).
    let mut latency_rows = Vec::new();
    for name in registry.single_names() {
        for net_name in &cfg.net_models {
            let net = NetModel::named(net_name).expect("cataloged net model");
            let params = BuildParams::new(cfg.n, domain.0, domain.1)
                .with_object_id_len(cfg.object_id_len)
                .with_net(net);
            let mut rng = simnet::rng_from_seed(cfg.seed ^ dht_api::fnv1a(name.as_bytes()));
            let mut scheme = registry.build_single(name, &params, &mut rng).expect("scheme builds");
            for h in 0..cfg.n as u64 {
                scheme.publish(rng.gen_range(domain.0..=domain.1), h).expect("publish");
            }
            let workload = WorkloadGen::named("uniform", domain).expect("cataloged");
            let driver = ParallelDriver {
                queries: cfg.queries,
                seed: cfg.seed ^ dht_api::fnv1a(b"uniform"),
                threads: cfg.threads,
                shard_salt: 0,
                metrics: false,
            };
            #[allow(clippy::disallowed_methods)]
            let start = Instant::now(); // detlint: allow(D2) — qps stopwatch
            let report = driver.run(scheme.as_ref(), &workload).expect("fault-free queries");
            let qps = cfg.queries as f64 / start.elapsed().as_secs_f64().max(1e-9);
            latency_rows.push(LatencyBaselineRow {
                scheme: name.to_string(),
                net: net_name.clone(),
                qps,
                report,
            });
        }
    }

    // Churn section: every dynamic scheme under every named plan.
    let mut churn_rows = Vec::new();
    let epoch_queries = (cfg.queries / cfg.churn_epochs).max(1);
    let churn_cell = |name: &str, plan_name: &str, factor: usize| {
        let policy =
            if factor <= 1 { ReplicaPolicy::none() } else { ReplicaPolicy::successor(factor) };
        let params = BuildParams::new(cfg.n, domain.0, domain.1)
            .with_object_id_len(cfg.object_id_len)
            .with_replication(policy);
        let mut rng = simnet::rng_from_seed(cfg.seed ^ dht_api::fnv1a(name.as_bytes()));
        let mut scheme = registry.build_single(name, &params, &mut rng).expect("scheme builds");
        for h in 0..cfg.n as u64 {
            scheme.publish(rng.gen_range(domain.0..=domain.1), h).expect("publish");
        }
        let plan = ChurnPlan::named(plan_name).expect("cataloged");
        let driver = ParallelDriver {
            queries: epoch_queries,
            seed: cfg.seed ^ dht_api::fnv1a(plan_name.as_bytes()),
            threads: cfg.threads,
            shard_salt: 0,
            metrics: false,
        };
        let policy_name =
            scheme.as_replicated().map_or_else(|| "none".to_string(), |c| c.policy().name());
        #[allow(clippy::disallowed_methods)]
        let start = Instant::now(); // detlint: allow(D2) — qps stopwatch
        let report = driver
            .run_epochs(scheme.as_mut(), &churn_workload(domain), &plan, cfg.churn_epochs)
            .expect("dynamic schemes run every cataloged plan");
        let total_queries = epoch_queries * cfg.churn_epochs;
        let qps = total_queries as f64 / start.elapsed().as_secs_f64().max(1e-9);
        (report, qps, policy_name)
    };
    for name in dynamic_single_names() {
        for plan_name in CHURN_PLAN_NAMES {
            let (report, qps, _) = churn_cell(&name, plan_name, 1);
            let final_peers = report.epochs.last().expect("epochs ran").peers;
            churn_rows.push(ChurnBaselineRow {
                scheme: name.clone(),
                plan: plan_name.to_string(),
                qps,
                report,
                final_peers,
            });
        }
    }

    // Replication section: the same grid again, behind the replication
    // layer at each configured factor (factor 1 rebuilds the unreplicated
    // scheme and must reproduce the churn section bit for bit — the
    // cross-check the quick tests pin).
    let mut replication_rows = Vec::new();
    for name in dynamic_single_names() {
        for plan_name in CHURN_PLAN_NAMES {
            for &factor in &cfg.replication_factors {
                let (report, qps, policy) = churn_cell(&name, plan_name, factor);
                let repair_placed = report.epochs.iter().map(|e| e.repair.placed).sum();
                let repair_messages = report.epochs.iter().map(|e| e.repair.messages).sum();
                let final_peers = report.epochs.last().expect("epochs ran").peers;
                replication_rows.push(ReplicationBaselineRow {
                    scheme: name.clone(),
                    plan: plan_name.to_string(),
                    factor,
                    policy,
                    qps,
                    report,
                    repair_placed,
                    repair_messages,
                    final_peers,
                });
            }
        }
    }

    // Hostile section: every dynamic scheme under every configured
    // hostile spec, epoch-driven with a frozen membership (rate-0 plan) so
    // partition specs traverse their open/heal schedule while loss and
    // rate-limit specs simply answer every epoch under fire. The build
    // RNG is seeded by the *base* name — the same network the churn
    // section measures, so recall deltas are attributable to the faults.
    let mut hostile_rows = Vec::new();
    let frozen = ChurnPlan::named("steady-churn").expect("cataloged").with_rate(0);
    for name in dynamic_single_names() {
        for spec in &cfg.hostile_specs {
            let full = format!("{name}@{spec}");
            let params =
                BuildParams::new(cfg.n, domain.0, domain.1).with_object_id_len(cfg.object_id_len);
            let mut rng = simnet::rng_from_seed(cfg.seed ^ dht_api::fnv1a(name.as_bytes()));
            let mut scheme =
                registry.build_single(&full, &params, &mut rng).expect("scheme builds");
            for h in 0..cfg.n as u64 {
                scheme.publish(rng.gen_range(domain.0..=domain.1), h).expect("publish");
            }
            // One driver seed for the whole section: every spec answers
            // the *same* queries, so recall/message deltas across specs
            // (the retry premium, the partition dip) are attributable to
            // the faults alone.
            let driver = ParallelDriver {
                queries: epoch_queries,
                seed: cfg.seed ^ dht_api::fnv1a(b"hostile"),
                threads: cfg.threads,
                shard_salt: 0,
                metrics: false,
            };
            #[allow(clippy::disallowed_methods)]
            let start = Instant::now(); // detlint: allow(D2) — qps stopwatch
            let report = driver
                .run_epochs(scheme.as_mut(), &churn_workload(domain), &frozen, cfg.churn_epochs)
                .expect("hostile queries degrade, never error");
            let total_queries = epoch_queries * cfg.churn_epochs;
            let qps = total_queries as f64 / start.elapsed().as_secs_f64().max(1e-9);
            hostile_rows.push(HostileBaselineRow {
                scheme: name.clone(),
                spec: spec.clone(),
                qps,
                report,
            });
        }
    }

    // Scaling section: the representative scheme set rebuilt at each
    // configured network size, with the machine-facing columns (wall
    // time, allocations, peak RSS) next to the usual simulated metrics.
    // Cells use the paper's ObjectID length and a fixed query count even
    // under --quick, so a (scheme, n) cell is comparable across runs.
    let mut scaling_rows = Vec::new();
    for &n in &cfg.scaling_ns {
        for name in SCALING_SCHEMES {
            let params = BuildParams::new(n, domain.0, domain.1)
                .with_object_id_len(crate::paper::OBJECT_ID_LEN);
            let mut rng =
                simnet::rng_from_seed(cfg.seed ^ dht_api::fnv1a(name.as_bytes()) ^ n as u64);
            #[allow(clippy::disallowed_methods)]
            let start = Instant::now(); // detlint: allow(D2) — build stopwatch
            let mut scheme = registry.build_single(name, &params, &mut rng).expect("scheme builds");
            let build_ms = start.elapsed().as_secs_f64() * 1e3;
            #[allow(clippy::disallowed_methods)]
            let start = Instant::now(); // detlint: allow(D2) — publish stopwatch
            for h in 0..n as u64 {
                scheme.publish(rng.gen_range(domain.0..=domain.1), h).expect("publish");
            }
            let publish_ms = start.elapsed().as_secs_f64() * 1e3;
            let workload = WorkloadGen::named("uniform", domain).expect("cataloged");
            let driver = ParallelDriver {
                queries: SCALING_QUERIES,
                seed: cfg.seed ^ dht_api::fnv1a(b"scaling"),
                threads: cfg.threads,
                shard_salt: 0,
                metrics: false,
            };
            #[allow(clippy::disallowed_methods)]
            let start = Instant::now(); // detlint: allow(D2) — qps stopwatch
            let report = driver.run(scheme.as_ref(), &workload).expect("fault-free queries");
            let qps = SCALING_QUERIES as f64 / start.elapsed().as_secs_f64().max(1e-9);
            // The allocation probe re-runs the same cell on one thread:
            // the counter is process-wide, so the single-threaded pass is
            // the only one whose delta is attributable to the queries.
            let single = ParallelDriver { threads: 1, ..driver };
            let allocs_per_query = metered_allocs(|| {
                driver_must_run(&single, scheme.as_ref(), &workload);
            })
            .map(|allocs| allocs as f64 / SCALING_QUERIES as f64);
            scaling_rows.push(ScalingRow {
                scheme: name.to_string(),
                n,
                build_ms,
                publish_ms,
                qps,
                allocs_per_query,
                peak_rss_kb: peak_rss_kb(),
                report,
            });
        }
    }

    BaselineReport {
        config: cfg.clone(),
        rows,
        latency_rows,
        churn_rows,
        replication_rows,
        hostile_rows,
        scaling_rows,
    }
}

/// Runs a driver pass for its allocator side effects alone (the metered
/// closure must return `()`; the report is the qps pass's job).
fn driver_must_run(driver: &ParallelDriver, scheme: &dyn dht_api::RangeScheme, wl: &WorkloadGen) {
    driver.run(scheme, wl).expect("fault-free queries");
}

/// Allocation count across `f`, when the `bench-alloc` counting allocator
/// is compiled in *and* installed as the global allocator; `None` (JSON
/// `null`) otherwise. `f` still runs either way, so row shapes do not
/// depend on the feature.
#[cfg(feature = "bench-alloc")]
fn metered_allocs(f: impl FnOnce()) -> Option<u64> {
    if !counting_alloc::is_installed() {
        f();
        return None;
    }
    let before = counting_alloc::allocation_count();
    f();
    Some(counting_alloc::allocation_count() - before)
}

/// Without the `bench-alloc` feature there is no counter: run `f` and
/// report `None`.
#[cfg(not(feature = "bench-alloc"))]
fn metered_allocs(f: impl FnOnce()) -> Option<u64> {
    f();
    None
}

/// The process's peak resident set size in KiB (`VmHWM` from
/// `/proc/self/status`) — a monotone high-water proxy for the memory the
/// sweep has needed so far. `None` when the proc file is absent (non-Linux).
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// The workload the churn section drives (the paper's uniform mix keeps
/// the section comparable with Table 1's fault-free numbers).
fn churn_workload(domain: (f64, f64)) -> WorkloadGen {
    WorkloadGen::named("uniform", domain).expect("cataloged")
}

impl BaselineReport {
    /// Renders the grid as a printable [`Table`].
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Bench baseline — N = {}, {} queries/cell, {} threads",
                self.config.n, self.config.queries, self.config.threads
            ),
            &[
                "scheme",
                "shape",
                "workload",
                "qps",
                "delay_mean",
                "delay_p95",
                "delay_p99",
                "latency_mean",
                "msgs/query",
                "mesg_ratio",
                "exact",
            ],
        );
        for r in &self.rows {
            t.push_row(vec![
                r.scheme.clone(),
                r.shape.to_string(),
                r.workload.clone(),
                format!("{:.0}", r.qps),
                format!("{:.2}", r.report.delay.mean),
                format!("{:.1}", r.report.delay.p95),
                format!("{:.1}", r.report.delay.p99),
                format!("{:.2}", r.report.latency.mean),
                format!("{:.1}", r.report.messages.mean),
                format!("{:.2}", r.report.mesg_ratio.mean),
                format!("{:.2}", r.report.exact_rate),
            ]);
        }
        for r in &self.latency_rows {
            t.push_row(vec![
                format!("{}@{}", r.scheme, r.net),
                "latency".to_string(),
                "uniform".to_string(),
                format!("{:.0}", r.qps),
                format!("{:.2}", r.report.delay.mean),
                format!("{:.1}", r.report.delay.p95),
                format!("{:.1}", r.report.delay.p99),
                format!("{:.2}", r.report.latency.mean),
                format!("{:.1}", r.report.messages.mean),
                format!("{:.2}", r.report.mesg_ratio.mean),
                format!("{:.2}", r.report.exact_rate),
            ]);
        }
        for r in &self.churn_rows {
            t.push_row(vec![
                r.scheme.clone(),
                "churn".to_string(),
                r.plan.clone(),
                format!("{:.0}", r.qps),
                format!("{:.2}", r.report.delay.mean),
                format!("{:.1}", r.report.delay.p95),
                format!("{:.1}", r.report.delay.p99),
                format!("{:.2}", r.report.latency.mean),
                format!("{:.1}", r.report.messages.mean),
                format!("{:.2}", r.report.mesg_ratio.mean),
                format!("{:.2}", r.report.exact_rate),
            ]);
        }
        for r in &self.replication_rows {
            t.push_row(vec![
                format!("{}+r{}", r.scheme, r.factor),
                "replication".to_string(),
                r.plan.clone(),
                format!("{:.0}", r.qps),
                format!("{:.2}", r.report.delay.mean),
                format!("{:.1}", r.report.delay.p95),
                format!("{:.1}", r.report.delay.p99),
                format!("{:.2}", r.report.latency.mean),
                format!("{:.1}", r.report.messages.mean),
                format!("{:.2}", r.report.mesg_ratio.mean),
                format!("{:.2}", r.report.exact_rate),
            ]);
        }
        for r in &self.hostile_rows {
            t.push_row(vec![
                format!("{}@{}", r.scheme, r.spec),
                "hostile".to_string(),
                "uniform".to_string(),
                format!("{:.0}", r.qps),
                format!("{:.2}", r.report.delay.mean),
                format!("{:.1}", r.report.delay.p95),
                format!("{:.1}", r.report.delay.p99),
                format!("{:.2}", r.report.latency.mean),
                format!("{:.1}", r.report.messages.mean),
                format!("{:.2}", r.report.mesg_ratio.mean),
                format!("{:.2}", r.report.exact_rate),
            ]);
        }
        for r in &self.scaling_rows {
            t.push_row(vec![
                r.scheme.clone(),
                "scaling".to_string(),
                format!("n={}", r.n),
                format!("{:.0}", r.qps),
                format!("{:.2}", r.report.delay.mean),
                format!("{:.1}", r.report.delay.p95),
                format!("{:.1}", r.report.delay.p99),
                format!("{:.2}", r.report.latency.mean),
                format!("{:.1}", r.report.messages.mean),
                format!("{:.2}", r.report.mesg_ratio.mean),
                format!("{:.2}", r.report.exact_rate),
            ]);
        }
        t
    }

    /// Serializes the report as pretty-printed JSON (hand-rolled — the
    /// build environment has no serde).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let c = &self.config;
        // `threads` is deliberately omitted: it provably cannot affect any
        // simulated metric (see tests/parallel_determinism.rs) and is
        // machine-local. The per-row `qps` field is the one remaining
        // machine-dependent value — filter it out when diffing regenerated
        // baselines (everything else is a pure function of the seed).
        let factors: Vec<String> = c.replication_factors.iter().map(usize::to_string).collect();
        let nets: Vec<String> = c.net_models.iter().map(|m| format!("\"{m}\"")).collect();
        let hostile: Vec<String> = c.hostile_specs.iter().map(|m| format!("\"{m}\"")).collect();
        let scaling_ns: Vec<String> = c.scaling_ns.iter().map(usize::to_string).collect();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"schema\": \"{SCHEMA_VERSION}\",");
        let _ = writeln!(
            s,
            "  \"config\": {{ \"n\": {}, \"queries\": {}, \"seed\": {}, \"object_id_len\": {}, \
             \"churn_epochs\": {}, \"replication_factors\": [{}], \"net_models\": [{}], \
             \"hostile_specs\": [{}], \"scaling_ns\": [{}] }},",
            c.n,
            c.queries,
            c.seed,
            c.object_id_len,
            c.churn_epochs,
            factors.join(", "),
            nets.join(", "),
            hostile.join(", "),
            scaling_ns.join(", ")
        );
        let _ = writeln!(s, "  \"results\": [");
        for (i, r) in self.rows.iter().enumerate() {
            let comma = if i + 1 < self.rows.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "    {{ \"scheme\": \"{}\", \"shape\": \"{}\", \"workload\": \"{}\", \
                 \"qps\": {}, \"delay_mean\": {}, \"delay_p50\": {}, \"delay_p95\": {}, \
                 \"delay_p99\": {}, \"delay_max\": {}, \"latency_mean\": {}, \
                 \"messages_mean\": {}, \"messages_p99\": {}, \
                 \"dest_peers_mean\": {}, \"mesg_ratio_mean\": {}, \"incre_ratio_mean\": {}, \
                 \"exact_rate\": {}, \"results_returned\": {} }}{comma}",
                r.scheme,
                r.shape,
                r.workload,
                json_f64(r.qps),
                json_f64(r.report.delay.mean),
                json_f64(r.report.delay.p50),
                json_f64(r.report.delay.p95),
                json_f64(r.report.delay.p99),
                json_f64(r.report.delay.max),
                json_f64(r.report.latency.mean),
                json_f64(r.report.messages.mean),
                json_f64(r.report.messages.p99),
                json_f64(r.report.dest_peers.mean),
                json_f64(r.report.mesg_ratio.mean),
                json_f64(r.report.incre_ratio.mean),
                json_f64(r.report.exact_rate),
                r.report.results_returned,
            );
        }
        let _ = writeln!(s, "  ],");
        let _ = writeln!(s, "  \"latency\": [");
        for (i, r) in self.latency_rows.iter().enumerate() {
            let comma = if i + 1 < self.latency_rows.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "    {{ \"scheme\": \"{}\", \"net\": \"{}\", \"qps\": {}, \
                 \"delay_mean\": {}, \"delay_p50\": {}, \"delay_p95\": {}, \"delay_p99\": {}, \
                 \"latency_mean\": {}, \"latency_p50\": {}, \"latency_p95\": {}, \
                 \"latency_p99\": {}, \"latency_max\": {}, \"messages_mean\": {}, \
                 \"exact_rate\": {}, \"results_returned\": {} }}{comma}",
                r.scheme,
                r.net,
                json_f64(r.qps),
                json_f64(r.report.delay.mean),
                json_f64(r.report.delay.p50),
                json_f64(r.report.delay.p95),
                json_f64(r.report.delay.p99),
                json_f64(r.report.latency.mean),
                json_f64(r.report.latency.p50),
                json_f64(r.report.latency.p95),
                json_f64(r.report.latency.p99),
                json_f64(r.report.latency.max),
                json_f64(r.report.messages.mean),
                json_f64(r.report.exact_rate),
                r.report.results_returned,
            );
        }
        let _ = writeln!(s, "  ],");
        let _ = writeln!(s, "  \"churn\": [");
        for (i, r) in self.churn_rows.iter().enumerate() {
            let comma = if i + 1 < self.churn_rows.len() { "," } else { "" };
            let epochs: Vec<String> = r.report.epochs.iter().map(epoch_json).collect();
            let _ = writeln!(
                s,
                "    {{ \"scheme\": \"{}\", \"plan\": \"{}\", \"qps\": {}, \
                 \"delay_mean\": {}, \"delay_p95\": {}, \"delay_p99\": {}, \
                 \"latency_mean\": {}, \"messages_mean\": {}, \
                 \"mesg_ratio_mean\": {}, \"recall_mean\": {}, \"exact_rate\": {}, \
                 \"results_returned\": {}, \"final_peers\": {}, \"epochs\": [{}] }}{comma}",
                r.scheme,
                r.plan,
                json_f64(r.qps),
                json_f64(r.report.delay.mean),
                json_f64(r.report.delay.p95),
                json_f64(r.report.delay.p99),
                json_f64(r.report.latency.mean),
                json_f64(r.report.messages.mean),
                json_f64(r.report.mesg_ratio.mean),
                json_f64(r.report.recall.mean),
                json_f64(r.report.exact_rate),
                r.report.results_returned,
                r.final_peers,
                epochs.join(", "),
            );
        }
        let _ = writeln!(s, "  ],");
        let _ = writeln!(s, "  \"replication\": [");
        for (i, r) in self.replication_rows.iter().enumerate() {
            let comma = if i + 1 < self.replication_rows.len() { "," } else { "" };
            let epochs: Vec<String> = r.report.epochs.iter().map(epoch_json).collect();
            let _ = writeln!(
                s,
                "    {{ \"scheme\": \"{}\", \"plan\": \"{}\", \"factor\": {}, \
                 \"policy\": \"{}\", \"qps\": {}, \"delay_mean\": {}, \"delay_p95\": {}, \
                 \"delay_p99\": {}, \"latency_mean\": {}, \
                 \"messages_mean\": {}, \"mesg_ratio_mean\": {}, \"recall_mean\": {}, \
                 \"exact_rate\": {}, \"results_returned\": {}, \"repair_placed\": {}, \
                 \"repair_messages\": {}, \"final_peers\": {}, \"epochs\": [{}] }}{comma}",
                r.scheme,
                r.plan,
                r.factor,
                r.policy,
                json_f64(r.qps),
                json_f64(r.report.delay.mean),
                json_f64(r.report.delay.p95),
                json_f64(r.report.delay.p99),
                json_f64(r.report.latency.mean),
                json_f64(r.report.messages.mean),
                json_f64(r.report.mesg_ratio.mean),
                json_f64(r.report.recall.mean),
                json_f64(r.report.exact_rate),
                r.report.results_returned,
                r.repair_placed,
                r.repair_messages,
                r.final_peers,
                epochs.join(", "),
            );
        }
        let _ = writeln!(s, "  ],");
        let _ = writeln!(s, "  \"hostile\": [");
        for (i, r) in self.hostile_rows.iter().enumerate() {
            let comma = if i + 1 < self.hostile_rows.len() { "," } else { "" };
            let epochs: Vec<String> = r.report.epochs.iter().map(epoch_json).collect();
            let _ = writeln!(
                s,
                "    {{ \"scheme\": \"{}\", \"spec\": \"{}\", \"qps\": {}, \
                 \"delay_mean\": {}, \"delay_p95\": {}, \"delay_p99\": {}, \
                 \"latency_mean\": {}, \"messages_mean\": {}, \
                 \"mesg_ratio_mean\": {}, \"recall_mean\": {}, \"exact_rate\": {}, \
                 \"results_returned\": {}, \"epochs\": [{}] }}{comma}",
                r.scheme,
                r.spec,
                json_f64(r.qps),
                json_f64(r.report.delay.mean),
                json_f64(r.report.delay.p95),
                json_f64(r.report.delay.p99),
                json_f64(r.report.latency.mean),
                json_f64(r.report.messages.mean),
                json_f64(r.report.mesg_ratio.mean),
                json_f64(r.report.recall.mean),
                json_f64(r.report.exact_rate),
                r.report.results_returned,
                epochs.join(", "),
            );
        }
        let _ = writeln!(s, "  ],");
        let _ = writeln!(s, "  \"scaling\": [");
        for (i, r) in self.scaling_rows.iter().enumerate() {
            let comma = if i + 1 < self.scaling_rows.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "    {{ \"scheme\": \"{}\", \"n\": {}, \"build_ms\": {}, \"publish_ms\": {}, \
                 \"qps\": {}, \"allocs_per_query\": {}, \"peak_rss_kb\": {}, \
                 \"delay_mean\": {}, \"delay_p99\": {}, \"messages_mean\": {}, \
                 \"mesg_ratio_mean\": {}, \"exact_rate\": {}, \"results_returned\": {} }}{comma}",
                r.scheme,
                r.n,
                json_f64(r.build_ms),
                json_f64(r.publish_ms),
                json_f64(r.qps),
                r.allocs_per_query.map_or_else(|| "null".to_string(), json_f64),
                r.peak_rss_kb.map_or_else(|| "null".to_string(), |kb| kb.to_string()),
                json_f64(r.report.delay.mean),
                json_f64(r.report.delay.p99),
                json_f64(r.report.messages.mean),
                json_f64(r.report.mesg_ratio.mean),
                json_f64(r.report.exact_rate),
                r.report.results_returned,
            );
        }
        let _ = writeln!(s, "  ]");
        let _ = writeln!(s, "}}");
        s
    }

    /// Writes the JSON to [`baseline_path`] and returns the path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_json(&self) -> std::io::Result<PathBuf> {
        self.write_json_to(baseline_path())
    }

    /// Writes the JSON to an explicit path (quick/smoke runs use this to
    /// avoid clobbering the committed full-scale baseline).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_json_to(&self, path: PathBuf) -> std::io::Result<PathBuf> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// Renders one epoch of an epoch-driven report (shared by the churn and
/// replication sections; unreplicated rows report all-zero repair).
fn epoch_json(e: &EpochSummary) -> String {
    format!(
        "{{ \"epoch\": {}, \"peers\": {}, \"events\": {}, \"delay_mean\": {}, \
         \"latency_mean\": {}, \"exact_rate\": {}, \"recall_mean\": {}, \"results\": {}, \
         \"repair_placed\": {}, \"repair_messages\": {} }}",
        e.epoch,
        e.peers,
        e.churn.events(),
        json_f64(e.delay_mean),
        json_f64(e.latency_mean),
        json_f64(e.exact_rate),
        json_f64(e.recall_mean),
        e.results_returned,
        e.repair.placed,
        e.repair.messages,
    )
}

/// JSON-safe float rendering (JSON has no NaN/∞; neither should a
/// baseline, but a corrupt artifact must never be written).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.4}")
    } else {
        "null".to_string()
    }
}

/// Where the committed baseline lives: `BENCH_baseline.json` at the
/// workspace root.
pub fn baseline_path() -> PathBuf {
    let base = std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| PathBuf::from(d).join("../.."))
        .unwrap_or_else(|_| PathBuf::from("."));
    base.join("BENCH_baseline.json")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_grid_covers_every_scheme_workload_churn_plan_and_factor() {
        let report = run(&BaselineConfig::quick());
        // Coverage counts come from the registry, not hand-kept lists.
        let registry = standard_registry();
        let singles: Vec<_> = report.rows.iter().filter(|r| r.shape == "single").collect();
        let rects: Vec<_> = report.rows.iter().filter(|r| r.shape == "rect").collect();
        assert_eq!(singles.len(), registry.single_names().len() * SINGLE_WORKLOADS.len());
        assert_eq!(rects.len(), registry.multi_names().len() * MULTI_WORKLOADS.len());
        for r in &report.rows {
            assert!(r.qps > 0.0, "{}/{} qps", r.scheme, r.workload);
            assert_eq!(r.report.queries, report.config.queries);
            assert_eq!(r.report.exact_rate, 1.0, "{}/{} inexact", r.scheme, r.workload);
        }
        // Latency section: every single scheme × every cataloged net
        // model, with model-invariant hop metrics and a unit row that
        // reproduces the fault-free grid's uniform cell exactly.
        assert_eq!(
            report.latency_rows.len(),
            registry.single_names().len() * report.config.net_models.len()
        );
        for r in &report.latency_rows {
            assert_eq!(r.report.exact_rate, 1.0, "{}@{} inexact", r.scheme, r.net);
            let unit = report
                .latency_rows
                .iter()
                .find(|u| u.net == "unit" && u.scheme == r.scheme)
                .expect("unit row exists");
            assert_eq!(r.report.delay, unit.report.delay, "{}@{} hop drift", r.scheme, r.net);
            assert_eq!(r.report.messages, unit.report.messages);
            assert_eq!(r.report.results_returned, unit.report.results_returned);
            if r.net == "unit" {
                // The unit row is the cross-check against the fault-free
                // grid's uniform cell: same build seed, same driver seed.
                let grid = report
                    .rows
                    .iter()
                    .find(|g| {
                        g.shape == "single" && g.scheme == r.scheme && g.workload == "uniform"
                    })
                    .expect("uniform grid cell exists");
                assert_eq!(r.report.delay, grid.report.delay, "{} unit != grid", r.scheme);
                assert_eq!(r.report.latency, grid.report.latency);
            } else if r.net == "wan" {
                assert!(
                    r.report.latency.mean >= 30.0 * unit.report.latency.mean,
                    "{}@wan latency too cheap",
                    r.scheme
                );
            }
        }
        // Churn section: every dynamic scheme × every cataloged plan.
        let dynamic = dynamic_single_names();
        assert_eq!(report.churn_rows.len(), dynamic.len() * CHURN_PLAN_NAMES.len());
        for r in &report.churn_rows {
            assert!(r.qps > 0.0, "{}/{} qps", r.scheme, r.plan);
            assert_eq!(r.report.epochs.len(), report.config.churn_epochs);
            assert!(r.final_peers > 0);
            // Epoch 0 always queries the as-built, fully-exact network.
            assert_eq!(r.report.epochs[0].exact_rate, 1.0, "{}/{}", r.scheme, r.plan);
        }
        // Replication section: the churn grid × every configured factor.
        let factors = &report.config.replication_factors;
        assert_eq!(
            report.replication_rows.len(),
            dynamic.len() * CHURN_PLAN_NAMES.len() * factors.len()
        );
        for r in &report.replication_rows {
            assert_eq!(r.report.epochs.len(), report.config.churn_epochs);
            if r.factor <= 1 {
                assert_eq!(r.policy, "none");
                assert_eq!(r.repair_placed, 0, "{}/{} unreplicated repair", r.scheme, r.plan);
            } else {
                assert_eq!(r.policy, format!("successor-{}", r.factor));
            }
        }
        // Factor-1 rows rebuild the unreplicated scheme from the same seed
        // and must reproduce the churn section exactly.
        for c in &report.churn_rows {
            let r1 = report
                .replication_rows
                .iter()
                .find(|r| r.factor == 1 && r.scheme == c.scheme && r.plan == c.plan)
                .expect("factor-1 row exists");
            assert_eq!(r1.report.delay, c.report.delay, "{}/{}", c.scheme, c.plan);
            assert_eq!(r1.report.results_returned, c.report.results_returned);
            assert_eq!(r1.final_peers, c.final_peers);
        }
        // Hostile section: every dynamic scheme × every configured spec.
        let specs = &report.config.hostile_specs;
        assert_eq!(report.hostile_rows.len(), dynamic.len() * specs.len());
        for r in &report.hostile_rows {
            assert!(r.qps > 0.0, "{}@{} qps", r.scheme, r.spec);
            assert_eq!(r.report.epochs.len(), report.config.churn_epochs);
            assert!(r.report.recall.mean <= 1.0 + 1e-12);
        }
        for name in &dynamic {
            let cell = |spec: &str| {
                report
                    .hostile_rows
                    .iter()
                    .find(|r| &r.scheme == name && r.spec == spec)
                    .unwrap_or_else(|| panic!("{name}@{spec} missing"))
            };
            // Loss costs recall; the 3-attempt retry budget wins some back
            // and pays for it in messages.
            let r1 = cell("lossy-p");
            let r3 = cell("lossy-p/r3");
            assert!(r1.report.recall.mean < 1.0, "{name}@lossy-p unscathed");
            assert!(r3.report.recall.mean >= r1.report.recall.mean, "{name} retries lost recall");
            assert!(r3.report.messages.mean > r1.report.messages.mean, "{name} free retries");
            // split-brain opens at epoch 1: epoch 0 is fault-free and the
            // open interval visibly dips.
            let sb = cell("split-brain");
            assert_eq!(sb.report.epochs[0].recall_mean, 1.0, "{name} pre-split");
            assert!(sb.report.epochs[1].recall_mean < 1.0, "{name} split epoch unscathed");
            // throttle prices latency, never loses answers.
            let th = cell("throttle");
            assert_eq!(th.report.recall.mean, 1.0, "{name}@throttle lost answers");
            assert_eq!(th.report.exact_rate, 1.0, "{name}@throttle inexact");
        }
        // Scaling section: every scaling scheme × every configured size,
        // exact answers and a fixed query count at every N.
        assert_eq!(
            report.scaling_rows.len(),
            report.config.scaling_ns.len() * SCALING_SCHEMES.len()
        );
        for r in &report.scaling_rows {
            assert!(r.qps > 0.0, "{} n={} qps", r.scheme, r.n);
            assert!(r.build_ms >= 0.0 && r.publish_ms >= 0.0);
            assert_eq!(r.report.queries, SCALING_QUERIES, "{} n={}", r.scheme, r.n);
            assert_eq!(r.report.exact_rate, 1.0, "{} n={} inexact", r.scheme, r.n);
            if cfg!(feature = "bench-alloc") {
                // The feature installs the allocator for this crate's
                // test binary too, so the column must be live — a `None`
                // here means the counter was compiled in but unreachable.
                let a = r.allocs_per_query.expect("bench-alloc counter installed");
                assert!(a > 0.0, "{} n={} counted no allocations", r.scheme, r.n);
            } else {
                assert!(r.allocs_per_query.is_none(), "{} n={} phantom counter", r.scheme, r.n);
            }
            #[cfg(target_os = "linux")]
            assert!(r.peak_rss_kb.unwrap_or(0) > 0, "{} n={} no VmHWM", r.scheme, r.n);
        }
        for name in SCALING_SCHEMES {
            for &n in &report.config.scaling_ns {
                assert!(
                    report.scaling_rows.iter().any(|r| r.scheme == name && r.n == n),
                    "scaling cell {name} n={n} missing"
                );
            }
        }

        // JSON sanity: parses at the bracket level and names every scheme.
        let json = report.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        for name in registry.single_names().iter().chain(registry.multi_names().iter()) {
            assert!(json.contains(&format!("\"scheme\": \"{name}\"")), "{name} missing");
        }
        assert!(json.contains(&format!("\"schema\": \"{SCHEMA_VERSION}\"")));
        assert!(json.contains("\"replication\": ["));
        assert!(json.contains("\"repair_placed\""));
        assert!(json.contains("\"latency\": ["));
        assert!(json.contains("\"latency_p95\""));
        assert!(json.contains("\"delay_p95\""));
        // v7: the latency section carries the delay median alongside the
        // latency one (both were always computed; v7 writes them out).
        assert!(json.contains("\"delay_p50\""));
        assert!(json.contains("\"latency_p50\""));
        assert!(json.contains("\"hostile\": ["));
        assert!(json.contains("\"hostile_specs\": ["));
        assert!(json.contains("\"scaling\": ["));
        assert!(json.contains("\"scaling_ns\": ["));
        assert!(json.contains("\"allocs_per_query\""));
        assert!(json.contains("\"peak_rss_kb\""));
        assert!(json.contains("\"build_ms\""));
        for spec in HOSTILE_SPECS {
            assert!(json.contains(&format!("\"spec\": \"{spec}\"")), "{spec} missing");
        }
        for net in NET_MODEL_NAMES {
            assert!(json.contains(&format!("\"net\": \"{net}\"")), "{net} missing");
        }
        for plan in CHURN_PLAN_NAMES {
            assert!(json.contains(&format!("\"plan\": \"{plan}\"")), "{plan} missing");
        }
        // The table mirrors every grid.
        assert_eq!(
            report.to_table().rows.len(),
            report.rows.len()
                + report.latency_rows.len()
                + report.churn_rows.len()
                + report.replication_rows.len()
                + report.hostile_rows.len()
                + report.scaling_rows.len()
        );
    }

    #[test]
    fn simulated_metrics_are_seed_deterministic() {
        let cfg = BaselineConfig {
            queries: 15,
            n: 150,
            scaling_ns: vec![120],
            ..BaselineConfig::quick()
        };
        let a = run(&cfg);
        let b = run(&cfg);
        for (ra, rb) in a.rows.iter().zip(&b.rows) {
            assert_eq!(ra.scheme, rb.scheme);
            assert_eq!(ra.report.delay, rb.report.delay, "{}/{}", ra.scheme, ra.workload);
            assert_eq!(ra.report.messages, rb.report.messages);
            assert_eq!(ra.report.results_returned, rb.report.results_returned);
        }
        for (ra, rb) in a.churn_rows.iter().zip(&b.churn_rows) {
            assert_eq!(ra.scheme, rb.scheme);
            assert_eq!(ra.plan, rb.plan);
            assert_eq!(ra.report.delay, rb.report.delay, "{}/{}", ra.scheme, ra.plan);
            assert_eq!(ra.report.results_returned, rb.report.results_returned);
            assert_eq!(ra.final_peers, rb.final_peers);
        }
        for (ra, rb) in a.replication_rows.iter().zip(&b.replication_rows) {
            assert_eq!((&ra.scheme, &ra.plan, ra.factor), (&rb.scheme, &rb.plan, rb.factor));
            assert_eq!(
                ra.report.delay, rb.report.delay,
                "{}/{}@r{}",
                ra.scheme, ra.plan, ra.factor
            );
            assert_eq!(ra.report.results_returned, rb.report.results_returned);
            assert_eq!(ra.repair_placed, rb.repair_placed);
            assert_eq!(ra.repair_messages, rb.repair_messages);
        }
        for (ra, rb) in a.hostile_rows.iter().zip(&b.hostile_rows) {
            assert_eq!((&ra.scheme, &ra.spec), (&rb.scheme, &rb.spec));
            assert_eq!(ra.report.recall, rb.report.recall, "{}@{}", ra.scheme, ra.spec);
            assert_eq!(ra.report.messages, rb.report.messages);
            assert_eq!(ra.report.latency, rb.report.latency);
            assert_eq!(ra.report.results_returned, rb.report.results_returned);
        }
        for (ra, rb) in a.scaling_rows.iter().zip(&b.scaling_rows) {
            assert_eq!((&ra.scheme, ra.n), (&rb.scheme, rb.n));
            assert_eq!(ra.report.delay, rb.report.delay, "{} n={}", ra.scheme, ra.n);
            assert_eq!(ra.report.messages, rb.report.messages);
            assert_eq!(ra.report.results_returned, rb.report.results_returned);
        }
    }
}
