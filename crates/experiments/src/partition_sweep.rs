//! R3 — hostile networks: recall through a partition's lifetime, and the
//! message premium retries pay to win recall back under loss.
//!
//! The paper evaluates delay-bounded range queries on a *well-behaved*
//! overlay; this extension measures the two failure modes the DHT
//! literature cares about most. Both experiments address schemes through
//! the registry's hostile suffixes (`"pira@split-brain"`,
//! `"pira@lossy-p/r3"`), so every fault verdict is the same pure hash the
//! test battery pins — the tables here are bitwise identical for any
//! worker thread count.
//!
//! * **Partition timeline** — every dynamic scheme runs a zero-churn
//!   epoch series under a partition plan (`split-brain`, `island-3`)
//!   crossed with net models (`unit`, `cluster` — under `cluster` the
//!   split follows the transit-stub topology). The per-epoch recall
//!   series shows 1.0 before the split opens, a dip while it is open,
//!   and 1.0 again from the first healed epoch — partitions are loud but
//!   leave no scars on a static membership.
//! * **Retry premium** — every dynamic scheme answers the same batch
//!   under `lossy-p` (10 % per-edge Bernoulli loss) at retry budgets
//!   r1/r2/r3. Recall and messages both rise monotonically in the
//!   attempt budget: retries buy recall and the table prices exactly
//!   what they cost.

use crate::output::Table;
use crate::{standard_registry, Scale};
use dht_api::{BuildParams, ChurnPlan, DriverReport, ParallelDriver, WorkloadGen};
use rand::Rng;
use simnet::FaultPlan;

/// Partition plans swept by default (both shapes in the hostile catalog).
pub const PARTITION_PLANS: [&str; 2] = ["split-brain", "island-3"];

/// Net models the partition is crossed with; under `cluster` the split
/// follows the transit-stub cluster groups instead of a node-id hash.
pub const PARTITION_NETS: [&str; 2] = ["unit", "cluster"];

/// Retry budgets swept against `lossy-p` (suffix spellings `r1`..`r3`).
pub const RETRY_ATTEMPTS: [u32; 3] = [1, 2, 3];

/// Epochs per timeline run — enough to see every default plan open *and*
/// heal with at least one healed epoch after (`split-brain` heals at 3,
/// `island-3` at 2).
pub const TIMELINE_EPOCHS: usize = 5;

/// Driver seed for both experiments (distinct from the churn sweep's).
const SWEEP_SEED: u64 = 0x9a17;

/// What the sweep runs: scale plus optional scheme/plan/net filters — the
/// all-defaults config reproduces the committed R3 numbers.
#[derive(Debug, Clone)]
pub struct PartitionSweepConfig {
    /// Experiment scale (network size, queries per epoch).
    pub scale: Scale,
    /// Schemes to sweep; `None` = every dynamic scheme.
    pub schemes: Option<Vec<String>>,
    /// Partition plans for the timeline experiment.
    pub plans: Vec<String>,
    /// Net models the timeline crosses the plans with.
    pub nets: Vec<String>,
    /// Worker threads for the parallel driver (the report is identical
    /// for any value; this only tunes wall-clock time).
    pub threads: usize,
}

impl PartitionSweepConfig {
    /// The default sweep at the given scale.
    pub fn new(scale: Scale) -> Self {
        PartitionSweepConfig {
            scale,
            schemes: None,
            plans: PARTITION_PLANS.iter().map(|s| s.to_string()).collect(),
            nets: PARTITION_NETS.iter().map(|s| s.to_string()).collect(),
            threads: dht_api::default_threads(),
        }
    }

    /// The scheme names this config selects, in registry order.
    pub fn scheme_names(&self) -> Vec<String> {
        match &self.schemes {
            None => crate::dynamic_single_names(),
            Some(filter) => crate::dynamic_single_names()
                .into_iter()
                .filter(|n| filter.iter().any(|f| f == n))
                .collect(),
        }
    }

    fn network_size(&self) -> usize {
        match self.scale {
            Scale::Full => 500,
            Scale::Quick => 150,
        }
    }
}

/// One scheme × partition plan × net model timeline measurement.
#[derive(Debug, Clone)]
pub struct PartitionPoint {
    /// Registry name of the base scheme (no suffixes).
    pub scheme: String,
    /// Partition plan name.
    pub plan: String,
    /// Net model name.
    pub net: String,
    /// First epoch the split is open.
    pub open_epoch: u64,
    /// First epoch the split is healed again.
    pub heal_epoch: u64,
    /// Mean peer recall per epoch, in epoch order.
    pub epoch_recall: Vec<f64>,
    /// Exact-answer rate per epoch, in epoch order.
    pub epoch_exact: Vec<f64>,
    /// The merged epoch-driven report.
    pub report: DriverReport,
}

impl PartitionPoint {
    /// Mean recall over the epochs the split is open.
    pub fn split_recall(&self) -> f64 {
        mean(&self.epoch_recall[self.open_epoch as usize..self.heal_epoch as usize])
    }

    /// Mean recall over the epochs at or after the heal.
    pub fn healed_recall(&self) -> f64 {
        mean(&self.epoch_recall[self.heal_epoch as usize..])
    }

    /// Mean recall over the epochs before the split opens (`None` for
    /// plans that open at epoch 0).
    pub fn pre_split_recall(&self) -> Option<f64> {
        (self.open_epoch > 0).then(|| mean(&self.epoch_recall[..self.open_epoch as usize]))
    }
}

/// One scheme × retry-budget measurement under `lossy-p`.
#[derive(Debug, Clone)]
pub struct RetryPoint {
    /// Registry name of the base scheme (no suffixes).
    pub scheme: String,
    /// Retry budget (total attempts; 1 = no retries).
    pub attempts: u32,
    /// The batch report under `{scheme}@lossy-p/r{attempts}`.
    pub report: DriverReport,
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Build-time RNG seeded by the *base* scheme name, so every suffixed
/// variant of a scheme measures the identical network and record load —
/// the comparisons across plans and retry budgets are same-network.
fn build_rng(base: &str) -> rand::rngs::SmallRng {
    simnet::rng_from_seed(SWEEP_SEED ^ dht_api::fnv1a(base.as_bytes()))
}

/// Runs the partition timeline for the default config.
///
/// # Panics
///
/// Panics if a dynamic scheme fails to build or errors on a query — the
/// sweep is meaningless with missing cells.
pub fn run_timeline_points(scale: Scale) -> Vec<PartitionPoint> {
    run_timeline_points_with(&PartitionSweepConfig::new(scale))
}

/// Runs the partition timeline under an explicit config.
///
/// # Panics
///
/// As [`run_timeline_points`].
pub fn run_timeline_points_with(cfg: &PartitionSweepConfig) -> Vec<PartitionPoint> {
    let registry = standard_registry();
    let n = cfg.network_size();
    let queries_per_epoch = (cfg.scale.queries() / TIMELINE_EPOCHS).max(10);
    let domain = (crate::paper::DOMAIN_LO, crate::paper::DOMAIN_HI);
    let params = BuildParams::new(n, domain.0, domain.1).with_object_id_len(32);
    let workload = WorkloadGen::named("uniform", domain).expect("cataloged");
    let driver =
        ParallelDriver::new(queries_per_epoch).with_seed(SWEEP_SEED).with_threads(cfg.threads);
    // Queries never change membership and the rate-0 plan applies no
    // events: the timeline isolates the partition itself.
    let frozen = ChurnPlan::named("steady-churn").expect("cataloged").with_rate(0);

    let mut points = Vec::new();
    for name in cfg.scheme_names() {
        for plan_name in &cfg.plans {
            let schedule = FaultPlan::named_hostile(plan_name)
                .unwrap_or_else(|| panic!("{plan_name}: not a hostile plan"));
            let partition = schedule.partition().expect("partition plans only");
            for net in &cfg.nets {
                let full = format!("{name}@{net}@{plan_name}");
                let mut rng = build_rng(&name);
                let mut scheme =
                    registry.build_single(&full, &params, &mut rng).expect("scheme builds");
                for h in 0..n as u64 {
                    scheme.publish(rng.gen_range(domain.0..=domain.1), h).expect("publish");
                }
                let report = driver
                    .run_epochs(scheme.as_mut(), &workload, &frozen, TIMELINE_EPOCHS)
                    .expect("epoch run");
                points.push(PartitionPoint {
                    scheme: name.clone(),
                    plan: plan_name.clone(),
                    net: net.clone(),
                    open_epoch: partition.open_epoch(),
                    heal_epoch: partition.heal_epoch(),
                    epoch_recall: report.epochs.iter().map(|e| e.recall_mean).collect(),
                    epoch_exact: report.epochs.iter().map(|e| e.exact_rate).collect(),
                    report,
                });
            }
        }
    }
    points
}

/// Runs the retry-premium experiment for the default config.
///
/// # Panics
///
/// As [`run_timeline_points`].
pub fn run_retry_points(scale: Scale) -> Vec<RetryPoint> {
    run_retry_points_with(&PartitionSweepConfig::new(scale))
}

/// Runs the retry-premium experiment under an explicit config: every
/// selected scheme at each retry budget against `lossy-p`, in attempt
/// order per scheme.
///
/// # Panics
///
/// As [`run_timeline_points`].
pub fn run_retry_points_with(cfg: &PartitionSweepConfig) -> Vec<RetryPoint> {
    let registry = standard_registry();
    let n = cfg.network_size();
    let domain = (crate::paper::DOMAIN_LO, crate::paper::DOMAIN_HI);
    let params = BuildParams::new(n, domain.0, domain.1).with_object_id_len(32);
    let workload = WorkloadGen::named("uniform", domain).expect("cataloged");
    let driver =
        ParallelDriver::new(cfg.scale.queries()).with_seed(SWEEP_SEED).with_threads(cfg.threads);

    let mut points = Vec::new();
    for name in cfg.scheme_names() {
        for &attempts in &RETRY_ATTEMPTS {
            let full = format!("{name}@lossy-p/r{attempts}");
            let mut rng = build_rng(&name);
            let mut scheme =
                registry.build_single(&full, &params, &mut rng).expect("scheme builds");
            for h in 0..n as u64 {
                scheme.publish(rng.gen_range(domain.0..=domain.1), h).expect("publish");
            }
            let report = driver.run(scheme.as_ref(), &workload).expect("batch run");
            points.push(RetryPoint { scheme: name.clone(), attempts, report });
        }
    }
    points
}

/// Runs the timeline and renders its table.
pub fn run(scale: Scale) -> Table {
    run_with(&PartitionSweepConfig::new(scale))
}

/// Renders the timeline table for an explicit config.
pub fn run_with(cfg: &PartitionSweepConfig) -> Table {
    let points = run_timeline_points_with(cfg);
    let mut t = Table::new(
        "R3a — recall through a partition (epoch-driven)",
        &[
            "scheme",
            "plan",
            "net",
            "open..heal",
            "pre recall",
            "split recall",
            "healed recall",
            "avg delay",
        ],
    );
    for p in &points {
        t.push_row(vec![
            p.scheme.clone(),
            p.plan.clone(),
            p.net.clone(),
            format!("{}..{}", p.open_epoch, p.heal_epoch),
            p.pre_split_recall().map_or_else(|| "—".to_string(), |r| format!("{r:.3}")),
            format!("{:.3}", p.split_recall()),
            format!("{:.3}", p.healed_recall()),
            format!("{:.2}", p.report.delay.mean),
        ]);
    }
    t
}

/// Runs the retry-premium experiment and renders its table.
pub fn run_retry_with(cfg: &PartitionSweepConfig) -> Table {
    let points = run_retry_points_with(cfg);
    let mut t = Table::new(
        "R3b — retry premium under lossy-p (10% per-edge loss)",
        &["scheme", "attempts", "peer recall", "exact rate", "avg messages", "avg latency"],
    );
    for p in &points {
        t.push_row(vec![
            p.scheme.clone(),
            p.attempts.to_string(),
            format!("{:.3}", p.report.recall.mean),
            format!("{:.3}", p.report.exact_rate),
            format!("{:.2}", p.report.messages.mean),
            format!("{:.2}", p.report.latency.mean),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recall_dips_during_the_split_and_heals_within_one_epoch() {
        let cfg = PartitionSweepConfig::new(Scale::Quick);
        let points = run_timeline_points_with(&cfg);
        let schemes = crate::dynamic_single_names();
        assert_eq!(points.len(), schemes.len() * PARTITION_PLANS.len() * PARTITION_NETS.len());
        for p in &points {
            let tag = format!("{}@{}@{}", p.scheme, p.net, p.plan);
            assert_eq!(p.epoch_recall.len(), TIMELINE_EPOCHS, "{tag}");
            // Before the split opens the network is fault-free.
            for e in 0..p.open_epoch as usize {
                assert_eq!(p.epoch_recall[e], 1.0, "{tag} epoch {e} pre-split");
                assert_eq!(p.epoch_exact[e], 1.0, "{tag} epoch {e} pre-split");
            }
            // The split visibly costs recall while it is open...
            assert!(p.split_recall() < 0.9999, "{tag}: split recall {}", p.split_recall());
            // ...and recall is perfect again from the very first healed
            // epoch — no scars on a static membership.
            for e in p.heal_epoch as usize..TIMELINE_EPOCHS {
                assert_eq!(p.epoch_recall[e], 1.0, "{tag} epoch {e} post-heal");
                assert_eq!(p.epoch_exact[e], 1.0, "{tag} epoch {e} post-heal");
            }
        }
    }

    #[test]
    fn retries_buy_recall_and_pay_in_messages_monotonically() {
        let cfg = PartitionSweepConfig::new(Scale::Quick);
        let points = run_retry_points_with(&cfg);
        let schemes = crate::dynamic_single_names();
        assert_eq!(points.len(), schemes.len() * RETRY_ATTEMPTS.len());
        for chunk in points.chunks(RETRY_ATTEMPTS.len()) {
            let name = &chunk[0].scheme;
            // 10% per-edge loss costs every scheme something at r1.
            assert!(chunk[0].report.recall.mean < 1.0, "{name} r1 unscathed by lossy-p");
            for pair in chunk.windows(2) {
                let (lo, hi) = (&pair[0], &pair[1]);
                assert_eq!(lo.scheme, hi.scheme);
                assert!(
                    hi.report.recall.mean >= lo.report.recall.mean - 1e-12,
                    "{name}: recall not monotone r{} -> r{}",
                    lo.attempts,
                    hi.attempts
                );
                assert!(
                    hi.report.messages.mean >= lo.report.messages.mean - 1e-12,
                    "{name}: messages not monotone r{} -> r{}",
                    lo.attempts,
                    hi.attempts
                );
            }
            // Retries actually fired: the r3 budget sent more messages
            // than the single attempt it extends.
            assert!(
                chunk[2].report.messages.mean > chunk[0].report.messages.mean,
                "{name}: no retry premium"
            );
            assert!(
                chunk[2].report.recall.mean > chunk[0].report.recall.mean,
                "{name}: retries bought no recall"
            );
        }
    }

    #[test]
    fn filters_narrow_the_sweep() {
        let cfg = PartitionSweepConfig {
            schemes: Some(vec!["pira".into(), "no-such-scheme".into()]),
            plans: vec!["split-brain".into()],
            nets: vec!["unit".into()],
            threads: 2,
            ..PartitionSweepConfig::new(Scale::Quick)
        };
        assert_eq!(cfg.scheme_names(), vec!["pira"], "unknown names filter out silently");
        let points = run_timeline_points_with(&cfg);
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].plan, "split-brain");
        assert_eq!((points[0].open_epoch, points[0].heal_epoch), (1, 3));
        assert_eq!(points[0].pre_split_recall(), Some(1.0));
    }
}
