//! §5 MIRA evaluation: the paper analyses (but does not plot) MIRA's bounds —
//! average delay `< log₂N` and maximum `< 2·log₂N` regardless of the query
//! volume or attribute count. This experiment measures them.

use crate::output::Table;
use crate::{paper, Scale};
use armada::MultiArmada;
use fissione::FissioneConfig;
use rand::Rng;

/// Runs the MIRA bound measurements over attribute counts and query sides.
pub fn run(scale: Scale) -> Table {
    let n = match scale {
        Scale::Full => paper::FIG56_N,
        Scale::Quick => 300,
    };
    let queries = scale.queries() / 2;
    let log_n = (n as f64).log2();
    let mut t = Table::new(
        format!("§5 — MIRA delay bounds (N = {n})"),
        &[
            "attributes",
            "side (% of domain)",
            "avg delay",
            "max delay",
            "logN",
            "2logN",
            "avg destpeers",
            "exact rate",
        ],
    );
    for &m in &[2usize, 3] {
        let domains: Vec<(f64, f64)> = (0..m).map(|_| (0.0, 100.0)).collect();
        let cfg =
            FissioneConfig { object_id_len: paper::OBJECT_ID_LEN, ..FissioneConfig::default() };
        let mut rng = simnet::rng_from_seed(0x314a ^ m as u64);
        let armada = MultiArmada::build_with(cfg, n, &domains, &mut rng).expect("build");
        for &side_pct in &[1.0f64, 10.0, 40.0] {
            let side = side_pct; // domain is [0,100] ⇒ percent = units
            let mut sum = 0f64;
            let mut max = 0f64;
            let mut dest = 0f64;
            let mut exact = 0usize;
            for q in 0..queries {
                let query: Vec<(f64, f64)> = (0..m)
                    .map(|_| {
                        let lo = rng.gen_range(0.0..(100.0 - side));
                        (lo, lo + side)
                    })
                    .collect();
                let origin = armada.net().random_peer(&mut rng);
                let out = armada.mira_query(origin, &query, q as u64).expect("query");
                sum += f64::from(out.metrics.delay);
                max = max.max(f64::from(out.metrics.delay));
                dest += out.metrics.dest_peers as f64;
                if out.metrics.exact {
                    exact += 1;
                }
            }
            t.push_row(vec![
                m.to_string(),
                format!("{side_pct:.0}%"),
                format!("{:.2}", sum / queries as f64),
                format!("{max:.0}"),
                format!("{log_n:.2}"),
                format!("{:.2}", 2.0 * log_n),
                format!("{:.1}", dest / queries as f64),
                format!("{:.3}", exact as f64 / queries as f64),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mira_bounds_hold_quick() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 6); // 2 attribute counts × 3 sides
        for row in &t.rows {
            let avg: f64 = row[2].parse().unwrap();
            let max: f64 = row[3].parse().unwrap();
            let log_n: f64 = row[4].parse().unwrap();
            let exact: f64 = row[7].parse().unwrap();
            assert!(avg < log_n, "avg bound, row {row:?}");
            assert!(max < 2.0 * log_n, "max bound, row {row:?}");
            assert_eq!(exact, 1.0, "exactness, row {row:?}");
        }
    }
}
