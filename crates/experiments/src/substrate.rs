//! §3 substrate validation: FISSIONE's claimed properties — average degree
//! 4, diameter `< 2·log₂N`, average routing delay `< log₂N`.

use crate::output::Table;
use crate::{paper, Scale};
use fissione::{FissioneConfig, FissioneNet};

/// Runs the substrate-property sweep.
pub fn run(scale: Scale) -> Table {
    let ns: Vec<usize> = match scale {
        Scale::Full => paper::NETWORK_SIZES.to_vec(),
        Scale::Quick => vec![250, 1000],
    };
    let route_samples = scale.queries();
    let mut t = Table::new(
        "§3 — FISSIONE substrate properties",
        &[
            "N",
            "avg degree",
            "avg depth",
            "max depth",
            "diameter",
            "avg route hops",
            "logN",
            "2logN",
            "nbhd violations",
        ],
    );
    for n in ns {
        let cfg =
            FissioneConfig { object_id_len: paper::OBJECT_ID_LEN, ..FissioneConfig::default() };
        let mut rng = simnet::rng_from_seed(0x5b57 ^ n as u64);
        let net = FissioneNet::build(cfg, n, &mut rng).expect("build");
        let report = net.check_invariants().expect("invariants hold");
        let depth = net.depth_stats();
        let degree = net.degree_stats();
        let routing = net.routing_sample(route_samples, &mut rng);
        // Exact diameter is O(N·E); sample eccentricities beyond 2000 peers.
        let diameter = if n <= 2000 { net.diameter() } else { net.diameter_sampled(64, &mut rng) };
        let log_n = (n as f64).log2();
        t.push_row(vec![
            n.to_string(),
            format!("{:.2}", degree.total.mean),
            format!("{:.2}", depth.summary.mean),
            format!("{}", report.max_depth),
            format!("{diameter}{}", if n <= 2000 { "" } else { " (sampled)" }),
            format!("{:.2}", routing.hops.mean),
            format!("{log_n:.2}"),
            format!("{:.2}", 2.0 * log_n),
            report.neighborhood_violations.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substrate_claims_hold_quick() {
        let t = run(Scale::Quick);
        for row in &t.rows {
            let max_depth: f64 = row[3].parse().unwrap();
            let avg_route: f64 = row[5].parse().unwrap();
            let log_n: f64 = row[6].parse().unwrap();
            let violations: usize = row[8].parse().unwrap();
            assert!(max_depth < 2.0 * log_n, "max depth bound, row {row:?}");
            assert!(avg_route < log_n, "avg routing bound, row {row:?}");
            assert_eq!(violations, 0, "balanced growth keeps the invariant");
        }
    }
}
