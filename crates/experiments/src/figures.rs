//! Table builders for Figures 5–8.

use crate::output::Table;
use crate::sweeps::{network_sweep, range_sweep, PointMetrics, SweepConfig};
use crate::{paper, Scale};

fn f(x: f64) -> String {
    Table::fmt_f64(x)
}

/// Figure 5: query delay at different range sizes (`N = 2000`).
pub mod fig5 {
    use super::*;

    /// Runs the Figure 5 experiment.
    pub fn run(scale: Scale) -> Table {
        let cfg = SweepConfig { queries: scale.queries(), ..SweepConfig::default() };
        let n = match scale {
            Scale::Full => paper::FIG56_N,
            Scale::Quick => 500,
        };
        let points = range_sweep(&cfg, n, &paper::RANGE_SIZES);
        render(n, &points)
    }

    pub(crate) fn render(n: usize, points: &[PointMetrics]) -> Table {
        let mut t = Table::new(
            format!("Figure 5 — query delay vs range size (N = {n})"),
            &["range_size", "pira_delay", "pira_max_delay", "dcf_can_delay", "logN", "2logN"],
        );
        let log_n = (n as f64).log2();
        for p in points {
            let pira = p.report("pira");
            let dcf = p.report("dcf-can");
            t.push_row(vec![
                f(p.range_size),
                f(pira.delay.mean),
                f(pira.delay.max),
                f(dcf.delay.mean),
                f(log_n),
                f(2.0 * log_n),
            ]);
        }
        t
    }
}

/// Figure 6: message cost at different range sizes (`N = 2000`) —
/// both panels: (a) message counts, (b) MesgRatio / IncreRatio.
pub mod fig6 {
    use super::*;

    /// Runs the Figure 6 experiment (both panels in one table).
    pub fn run(scale: Scale) -> Table {
        let cfg = SweepConfig { queries: scale.queries(), ..SweepConfig::default() };
        let n = match scale {
            Scale::Full => paper::FIG56_N,
            Scale::Quick => 500,
        };
        let points = range_sweep(&cfg, n, &paper::RANGE_SIZES);
        render(n, &points)
    }

    pub(crate) fn render(n: usize, points: &[PointMetrics]) -> Table {
        let mut t = Table::new(
            format!("Figure 6 — messages vs range size (N = {n})"),
            &[
                "range_size",
                "pira_messages",
                "dcf_can_messages",
                "destpeers",
                "mesg_ratio",
                "incre_ratio",
            ],
        );
        for p in points {
            let pira = p.report("pira");
            let dcf = p.report("dcf-can");
            t.push_row(vec![
                f(p.range_size),
                f(pira.messages.mean),
                f(dcf.messages.mean),
                f(pira.dest_peers.mean),
                f(pira.mesg_ratio.mean),
                f(pira.incre_ratio.mean),
            ]);
        }
        t
    }
}

/// Figure 7: query delay at different network sizes (range = 20).
pub mod fig7 {
    use super::*;

    /// Runs the Figure 7 experiment.
    pub fn run(scale: Scale) -> Table {
        let cfg = SweepConfig { queries: scale.queries(), ..SweepConfig::default() };
        let ns: Vec<usize> = match scale {
            Scale::Full => paper::NETWORK_SIZES.to_vec(),
            Scale::Quick => vec![250, 500, 1000],
        };
        let points = network_sweep(&cfg, &ns, paper::FIG78_RANGE);
        render(&points)
    }

    pub(crate) fn render(points: &[PointMetrics]) -> Table {
        let mut t = Table::new(
            format!("Figure 7 — query delay vs network size (range = {})", paper::FIG78_RANGE),
            &["network_size", "pira_delay", "pira_max_delay", "dcf_can_delay", "logN", "2logN"],
        );
        for p in points {
            let log_n = (p.n_peers as f64).log2();
            let pira = p.report("pira");
            let dcf = p.report("dcf-can");
            t.push_row(vec![
                p.n_peers.to_string(),
                f(pira.delay.mean),
                f(pira.delay.max),
                f(dcf.delay.mean),
                f(log_n),
                f(2.0 * log_n),
            ]);
        }
        t
    }
}

/// Figure 8: message cost at different network sizes (range = 20) — both
/// panels.
pub mod fig8 {
    use super::*;

    /// Runs the Figure 8 experiment (both panels in one table).
    pub fn run(scale: Scale) -> Table {
        let cfg = SweepConfig { queries: scale.queries(), ..SweepConfig::default() };
        let ns: Vec<usize> = match scale {
            Scale::Full => paper::NETWORK_SIZES.to_vec(),
            Scale::Quick => vec![250, 500, 1000],
        };
        let points = network_sweep(&cfg, &ns, paper::FIG78_RANGE);
        render(&points)
    }

    pub(crate) fn render(points: &[PointMetrics]) -> Table {
        let mut t = Table::new(
            format!("Figure 8 — messages vs network size (range = {})", paper::FIG78_RANGE),
            &[
                "network_size",
                "pira_messages",
                "dcf_can_messages",
                "destpeers",
                "mesg_ratio",
                "incre_ratio",
            ],
        );
        for p in points {
            let pira = p.report("pira");
            let dcf = p.report("dcf-can");
            t.push_row(vec![
                p.n_peers.to_string(),
                f(pira.messages.mean),
                f(dcf.messages.mean),
                f(pira.dest_peers.mean),
                f(pira.mesg_ratio.mean),
                f(pira.incre_ratio.mean),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_figures_have_expected_columns_and_rows() {
        let t5 = fig5::run(Scale::Quick);
        assert_eq!(t5.columns.len(), 6);
        assert_eq!(t5.rows.len(), paper::RANGE_SIZES.len());
        let t7 = fig7::run(Scale::Quick);
        assert_eq!(t7.rows.len(), 3);
        // PIRA delay column stays under logN for every row of fig5.
        for row in &t5.rows {
            let pira: f64 = row[1].parse().unwrap();
            let log_n: f64 = row[4].parse().unwrap();
            assert!(pira < log_n, "row {row:?}");
        }
    }
}
