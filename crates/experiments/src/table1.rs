//! Table 1 — comparison of general range-query schemes, with **every row
//! measured** through the unified [`dht_api`] interface: each row names a
//! scheme in the [`standard registry`](crate::standard_registry), builds it
//! at runtime, and fans the identical workload across threads with the
//! shared [`ParallelDriver`] — no scheme-specific glue.

use crate::output::Table;
use crate::{paper, Scale};
use dht_api::{BuildParams, DriverReport, MultiBuildParams, ParallelDriver, WorkloadGen};
use rand::rngs::SmallRng;
use rand::Rng;

/// Where a row's deterministic RNG stream comes from.
///
/// The Armada and DCF-CAN rows share one stream (build + queries draw from
/// it in sequence, as the original harness did); every other row derives a
/// fresh stream by XORing the master seed.
enum RngSource {
    /// Continue the shared master stream.
    Shared,
    /// Fresh stream from `master_seed ^ x`.
    Fresh(u64),
}

/// Which query shape drives the row.
enum Shape {
    /// `[lo, lo + range]` workload through [`dht_api::RangeScheme`];
    /// `publish` says whether to load `N` random records first.
    Single {
        /// Publish `N` uniform records before measuring.
        publish: bool,
    },
    /// Equivalent-selectivity squares through [`dht_api::MultiRangeScheme`]
    /// (always publishes `N` random points).
    Square,
}

/// One Table 1 row: a registry name plus presentation metadata. Everything
/// measured comes from the scheme trait and the driver report.
struct RowSpec {
    /// Registry name (single or multi, per `shape`).
    name: &'static str,
    /// Citation label for the first column.
    label: &'static str,
    /// RNG stream for build + publish + queries.
    rng: RngSource,
    /// Query shape and data loading.
    shape: Shape,
    /// Multi-attribute column text (presentation; `supports_rect` is the
    /// programmatic flag).
    multi_attr: &'static str,
    /// Annotation appended to the measured average delay; `{logN}`
    /// interpolates.
    avg_note: &'static str,
    /// Whether this scheme claims the paper's `< 2·logN` delay bound (only
    /// Armada does; the row verifies the claim against the measured max).
    delay_bounded: bool,
}

const ROWS: &[RowSpec] = &[
    RowSpec {
        name: "pira",
        label: "Armada (this work)",
        rng: RngSource::Shared,
        shape: Shape::Single { publish: false },
        multi_attr: "yes",
        avg_note: "(< logN = {logN})",
        delay_bounded: true,
    },
    RowSpec {
        name: "dcf-can",
        label: "DCF-CAN [9]",
        rng: RngSource::Shared,
        shape: Shape::Single { publish: false },
        multi_attr: "no",
        avg_note: "(> logN, grows with range & N^1/2)",
        delay_bounded: false,
    },
    RowSpec {
        name: "pht-fissione",
        label: "PHT [10] over fissione",
        rng: RngSource::Fresh(0xf155),
        shape: Shape::Single { publish: true },
        multi_attr: "yes (via SFC)",
        avg_note: "(≈ b·routing)",
        delay_bounded: false,
    },
    RowSpec {
        name: "pht-chord",
        label: "PHT [10] over chord",
        rng: RngSource::Fresh(0xc0ed),
        shape: Shape::Single { publish: true },
        multi_attr: "yes (via SFC)",
        avg_note: "(≈ b·routing)",
        delay_bounded: false,
    },
    RowSpec {
        name: "seqwalk",
        label: "SeqWalk (ref. for [11-13])",
        rng: RngSource::Fresh(0),
        shape: Shape::Single { publish: false },
        multi_attr: "no",
        avg_note: "(≈ logN + n − 1)",
        delay_bounded: false,
    },
    RowSpec {
        name: "skipgraph",
        label: "Skip Graph / SkipNet [11,12]",
        rng: RngSource::Fresh(0x5419),
        shape: Shape::Single { publish: true },
        multi_attr: "no",
        avg_note: "(≈ logN + n)",
        delay_bounded: false,
    },
    RowSpec {
        name: "squid",
        label: "Squid [8]",
        rng: RngSource::Fresh(0x5c1d),
        shape: Shape::Square,
        multi_attr: "yes",
        avg_note: "(≈ h·logN)",
        delay_bounded: false,
    },
    RowSpec {
        name: "scrap",
        label: "SCRAP [13]",
        rng: RngSource::Fresh(0x5c4a),
        shape: Shape::Square,
        multi_attr: "yes",
        avg_note: "(≈ logN + n, per curve range)",
        delay_bounded: false,
    },
];

/// Runs the Table 1 reproduction: fixed `N`, range 20, measured average and
/// maximum delay plus a delay-bounded verdict per scheme — every scheme
/// selected by name from the registry and driven through the traits.
pub fn run(scale: Scale) -> Table {
    let registry = crate::standard_registry();
    let n = match scale {
        Scale::Full => paper::FIG56_N,
        Scale::Quick => 400,
    };
    let queries = scale.queries();
    let range = paper::FIG78_RANGE;
    let master_seed = 0x7ab1e1u64;
    let log_n = (n as f64).log2();

    let mut t = Table::new(
        format!("Table 1 — general range query schemes (measured at N = {n}, range = {range})"),
        &[
            "scheme",
            "underlying DHT",
            "degree",
            "single-attr",
            "multi-attr",
            "avg delay",
            "max delay",
            "delay bounded?",
        ],
    );

    // Side of the 2-attribute square whose area matches the 1-attribute
    // range's selectivity (2% at the paper's defaults).
    let side = (range / (paper::DOMAIN_HI - paper::DOMAIN_LO)).sqrt() * 100.0;

    let mut shared_rng = simnet::rng_from_seed(master_seed);
    for spec in ROWS {
        let mut fresh;
        let rng: &mut SmallRng = match spec.rng {
            RngSource::Shared => &mut shared_rng,
            RngSource::Fresh(x) => {
                fresh = simnet::rng_from_seed(master_seed ^ x);
                &mut fresh
            }
        };

        // Build by name, optionally load data, then fan the workload across
        // threads — all through the unified interface. The driver seed is
        // drawn from the row's RNG stream, so each row keeps its historical
        // build/publish/query stream dependence while the queries
        // themselves are index-addressed and thread-count invariant.
        let (substrate, degree, report): (String, String, DriverReport) = match spec.shape {
            Shape::Single { publish } => {
                let params = BuildParams::new(n, paper::DOMAIN_LO, paper::DOMAIN_HI);
                let mut scheme =
                    registry.build_single(spec.name, &params, rng).expect("registered scheme");
                if publish {
                    for h in 0..n as u64 {
                        let v = rng.gen_range(paper::DOMAIN_LO..=paper::DOMAIN_HI);
                        scheme.publish(v, h).expect("publish");
                    }
                }
                let driver = ParallelDriver::new(queries).with_seed(rng.gen());
                let workload = WorkloadGen::uniform((paper::DOMAIN_LO, paper::DOMAIN_HI), range);
                let report = driver.run(scheme.as_ref(), &workload).expect("fault-free workload");
                (scheme.substrate(), scheme.degree(), report)
            }
            Shape::Square => {
                let domains = [(0.0, 100.0), (0.0, 100.0)];
                let params = MultiBuildParams::new(n, &domains);
                let mut scheme =
                    registry.build_multi(spec.name, &params, rng).expect("registered scheme");
                for h in 0..n as u64 {
                    let p = [rng.gen_range(0.0..=100.0), rng.gen_range(0.0..=100.0)];
                    scheme.publish_point(&p, h).expect("publish");
                }
                let driver = ParallelDriver::new(queries).with_seed(rng.gen());
                let workload = WorkloadGen::uniform((0.0, 100.0), side);
                let report = driver
                    .run_multi(scheme.as_ref(), &domains, &workload)
                    .expect("fault-free workload");
                (scheme.substrate(), scheme.degree(), report)
            }
        };

        let avg_note = spec.avg_note.replace("{logN}", &format!("{log_n:.1}"));
        let (max_cell, bounded_cell) = if spec.delay_bounded {
            let bound = 2.0 * log_n;
            (
                format!("{:.0} (< 2logN = {bound:.1})", report.delay.max),
                if report.delay.max < bound { "yes".to_string() } else { "VIOLATED".to_string() },
            )
        } else {
            (format!("{:.0}", report.delay.max), "no".to_string())
        };
        t.push_row(vec![
            spec.label.into(),
            substrate,
            degree,
            "yes".into(),
            spec.multi_attr.into(),
            format!("{:.2} {avg_note}", report.delay.mean),
            max_cell,
            bounded_cell,
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_quick_has_all_schemes_measured() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 8);
        let schemes: Vec<&str> = t.rows.iter().map(|r| r[0].as_str()).collect();
        assert!(schemes[0].starts_with("Armada"));
        assert!(schemes.iter().any(|s| s.starts_with("DCF-CAN")));
        assert!(schemes.iter().any(|s| s.contains("PHT") && s.contains("chord")));
        assert!(schemes.iter().any(|s| s.starts_with("SeqWalk")));
        assert!(schemes.iter().any(|s| s.starts_with("Skip Graph")));
        assert!(schemes.iter().any(|s| s.starts_with("Squid")));
        assert!(schemes.iter().any(|s| s.starts_with("SCRAP")));
        // Armada is the only measured delay-bounded row, and every row now
        // carries a measured max-delay figure.
        assert_eq!(t.rows[0][7], "yes");
        for row in &t.rows[1..] {
            assert_ne!(row[7], "yes", "{} must not be delay-bounded", row[0]);
            assert!(row[6].parse::<f64>().is_ok(), "{} max delay must be measured", row[0]);
        }
        // Armada's average beats every other scheme's average.
        let pira_avg: f64 = t.rows[0][5].split(' ').next().unwrap().parse().unwrap();
        for row in &t.rows[1..] {
            let avg: f64 = row[5].split(' ').next().unwrap().parse().unwrap();
            assert!(pira_avg < avg, "{} should be slower than Armada", row[0]);
        }
    }

    #[test]
    fn table1_is_deterministic_for_a_fixed_seed() {
        // The registry + driver path must preserve run-to-run stability:
        // same seed, same table, cell for cell.
        let a = run(Scale::Quick);
        let b = run(Scale::Quick);
        assert_eq!(a.rows, b.rows);
    }
}
