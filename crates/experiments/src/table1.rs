//! Table 1 — comparison of general range-query schemes, with **every row
//! measured**: Armada/PIRA, DCF-CAN, PHT (over FissionE and Chord), a
//! sequential-walk reference, Skip Graph, Squid, and SCRAP all run the same
//! workload on their own substrates.

use crate::output::Table;
use crate::{paper, Scale};
use armada::SingleArmada;
use dht_api::Dht;
use dht_can::dcf::{self, FloodMode};
use dht_can::{CanConfig, CanNet};
use fissione::FissioneConfig;
use pht::Pht;
use rand::Rng;

/// Runs the Table 1 reproduction: fixed `N`, range 20, measured average and
/// maximum delay plus a delay-bounded verdict per scheme.
pub fn run(scale: Scale) -> Table {
    let n = match scale {
        Scale::Full => paper::FIG56_N,
        Scale::Quick => 400,
    };
    let queries = scale.queries();
    let range = paper::FIG78_RANGE;
    let seed = 0x7ab1e1u64;
    let log_n = (n as f64).log2();

    let mut t = Table::new(
        format!("Table 1 — general range query schemes (measured at N = {n}, range = {range})"),
        &[
            "scheme",
            "underlying DHT",
            "degree",
            "single-attr",
            "multi-attr",
            "avg delay",
            "max delay",
            "delay bounded?",
        ],
    );

    // --- Armada / PIRA over FISSIONE (measured). --------------------------
    let mut rng = simnet::rng_from_seed(seed);
    let fission_cfg =
        FissioneConfig { object_id_len: paper::OBJECT_ID_LEN, ..FissioneConfig::default() };
    let armada =
        SingleArmada::build_with(fission_cfg, n, paper::DOMAIN_LO, paper::DOMAIN_HI, &mut rng)
            .expect("build");
    let degree = armada.net().degree_stats().total.mean;
    let (mut sum, mut max) = (0f64, 0f64);
    for q in 0..queries {
        let lo = rng.gen_range(paper::DOMAIN_LO..(paper::DOMAIN_HI - range));
        let origin = armada.net().random_peer(&mut rng);
        let out = armada.pira_query(origin, lo, lo + range, q as u64).expect("query");
        sum += f64::from(out.metrics.delay);
        max = max.max(f64::from(out.metrics.delay));
    }
    let avg = sum / queries as f64;
    t.push_row(vec![
        "Armada (this work)".into(),
        "FissionE".into(),
        format!("{degree:.1}"),
        "yes".into(),
        "yes".into(),
        format!("{avg:.2} (< logN = {log_n:.1})"),
        format!("{max:.0} (< 2logN = {:.1})", 2.0 * log_n),
        if max < 2.0 * log_n { "yes".into() } else { "VIOLATED".to_string() },
    ]);

    // --- DCF-CAN (measured). ----------------------------------------------
    let can_cfg = CanConfig {
        domain_lo: paper::DOMAIN_LO,
        domain_hi: paper::DOMAIN_HI,
        ..CanConfig::default()
    };
    let can = CanNet::build(can_cfg, n, &mut rng).expect("build");
    let can_degree = (0..can.len()).map(|z| can.neighbors(z).len()).sum::<usize>() as f64
        / can.len() as f64;
    let (mut sum, mut max) = (0f64, 0f64);
    for q in 0..queries {
        let lo = rng.gen_range(paper::DOMAIN_LO..(paper::DOMAIN_HI - range));
        let origin = can.random_zone(&mut rng);
        let out = dcf::range_query(&can, origin, lo, lo + range, q as u64, FloodMode::Directed)
            .expect("query");
        sum += f64::from(out.delay);
        max = max.max(f64::from(out.delay));
    }
    t.push_row(vec![
        "DCF-CAN [9]".into(),
        "CAN (d = 2)".into(),
        format!("{can_degree:.1}"),
        "yes".into(),
        "no".into(),
        format!("{:.2} (> logN, grows with range & N^1/2)", sum / queries as f64),
        format!("{max:.0}"),
        "no".into(),
    ]);

    // --- PHT over FissionE and over Chord (measured). ----------------------
    for substrate in ["fissione", "chord"] {
        let (avg, max, deg): (f64, f64, String) = match substrate {
            "fissione" => {
                let mut rng = simnet::rng_from_seed(seed ^ 0xf155);
                let cfg = FissioneConfig {
                    object_id_len: paper::OBJECT_ID_LEN,
                    ..FissioneConfig::default()
                };
                let dht = fissione::FissioneNet::build(cfg, n, &mut rng).expect("build");
                let deg = format!("{:.1}", dht.degree_stats().total.mean);
                let (a, m) = measure_pht(dht, n, queries, range, seed, &mut rng);
                (a, m, deg)
            }
            _ => {
                let mut rng = simnet::rng_from_seed(seed ^ 0xc0ed);
                let dht = chord::ChordNet::build(n, &mut rng);
                let deg = format!("O(logN) = {log_n:.0}");
                let (a, m) = measure_pht(dht, n, queries, range, seed, &mut rng);
                (a, m, deg)
            }
        };
        t.push_row(vec![
            format!("PHT [10] over {substrate}"),
            substrate.into(),
            deg,
            "yes".into(),
            "yes (via SFC)".into(),
            format!("{avg:.2} (≈ b·routing)"),
            format!("{max:.0}"),
            "no".into(),
        ]);
    }

    // --- Sequential-walk reference: the measured counterpart of the
    // --- O(logN + n) class (Skip Graph / SkipNet / SCRAP). -----------------
    {
        let mut rng = simnet::rng_from_seed(seed ^ 0x5e9);
        let (mut sum, mut max) = (0f64, 0f64);
        for _ in 0..queries {
            let lo = rng.gen_range(paper::DOMAIN_LO..(paper::DOMAIN_HI - range));
            let origin = armada.net().random_peer(&mut rng);
            let out = armada::seqwalk::query(&armada, origin, lo, lo + range)
                .expect("query");
            sum += f64::from(out.metrics.delay);
            max = max.max(f64::from(out.metrics.delay));
        }
        t.push_row(vec![
            "SeqWalk (ref. for [11-13])".into(),
            "FissionE placement".into(),
            "2 (successor list)".into(),
            "yes".into(),
            "no".into(),
            format!("{:.2} (≈ logN + n − 1)", sum / queries as f64),
            format!("{max:.0}"),
            "no".into(),
        ]);
    }

    // --- Skip Graph (measured): single-attribute ranges. -------------------
    {
        let mut rng = simnet::rng_from_seed(seed ^ 0x5419);
        let mut skip = skipgraph::SkipGraphNet::build(n, paper::DOMAIN_LO, paper::DOMAIN_HI, &mut rng);
        for h in 0..n as u64 {
            skip.publish(rng.gen_range(paper::DOMAIN_LO..=paper::DOMAIN_HI), h);
        }
        let (mut sum, mut max) = (0f64, 0f64);
        for _ in 0..queries {
            let lo = rng.gen_range(paper::DOMAIN_LO..(paper::DOMAIN_HI - range));
            let origin = skip.random_node(&mut rng);
            let out = skip.range_query(origin, lo, lo + range);
            sum += f64::from(out.delay);
            max = max.max(f64::from(out.delay));
        }
        t.push_row(vec![
            "Skip Graph / SkipNet [11,12]".into(),
            "— (is the overlay)".into(),
            "O(logN)".into(),
            "yes".into(),
            "no".into(),
            format!("{:.2} (≈ logN + n)", sum / queries as f64),
            format!("{max:.0}"),
            "no".into(),
        ]);
    }

    // --- Squid and SCRAP (measured): 2-attribute rectangles whose area
    // --- matches the single-attribute range's selectivity (2%). ------------
    let side_frac = (range / (paper::DOMAIN_HI - paper::DOMAIN_LO)).sqrt();
    let side = side_frac * 100.0;
    {
        let mut rng = simnet::rng_from_seed(seed ^ 0x5c1d);
        let mut sq =
            squid::SquidNet::build(n, &[(0.0, 100.0), (0.0, 100.0)], &mut rng).expect("build");
        for h in 0..n as u64 {
            sq.publish(&[rng.gen_range(0.0..=100.0), rng.gen_range(0.0..=100.0)], h)
                .expect("publish");
        }
        let (mut sum, mut max) = (0f64, 0f64);
        for _ in 0..queries {
            let lo0 = rng.gen_range(0.0..(100.0 - side));
            let lo1 = rng.gen_range(0.0..(100.0 - side));
            let origin = sq.random_node(&mut rng);
            let out = sq
                .range_query(origin, &[(lo0, lo0 + side), (lo1, lo1 + side)])
                .expect("query");
            sum += out.delay as f64;
            max = max.max(out.delay as f64);
        }
        t.push_row(vec![
            "Squid [8]".into(),
            "Chord".into(),
            "O(logN)".into(),
            "yes".into(),
            "yes".into(),
            format!("{:.2} (≈ h·logN)", sum / queries as f64),
            format!("{max:.0}"),
            "no".into(),
        ]);
    }
    {
        let mut rng = simnet::rng_from_seed(seed ^ 0x5c4a);
        let mut sc =
            scrap::ScrapNet::build(n, &[(0.0, 100.0), (0.0, 100.0)], &mut rng).expect("build");
        for h in 0..n as u64 {
            sc.publish(&[rng.gen_range(0.0..=100.0), rng.gen_range(0.0..=100.0)], h)
                .expect("publish");
        }
        let (mut sum, mut max) = (0f64, 0f64);
        for _ in 0..queries {
            let lo0 = rng.gen_range(0.0..(100.0 - side));
            let lo1 = rng.gen_range(0.0..(100.0 - side));
            let origin = sc.random_node(&mut rng);
            let out = sc
                .range_query(origin, &[(lo0, lo0 + side), (lo1, lo1 + side)])
                .expect("query");
            sum += f64::from(out.delay);
            max = max.max(f64::from(out.delay));
        }
        t.push_row(vec![
            "SCRAP [13]".into(),
            "Skip Graph".into(),
            "O(logN)".into(),
            "yes".into(),
            "yes".into(),
            format!("{:.2} (≈ logN + n, per curve range)", sum / queries as f64),
            format!("{max:.0}"),
            "no".into(),
        ]);
    }
    t
}

fn measure_pht<D: Dht>(
    dht: D,
    n: usize,
    queries: usize,
    range: f64,
    seed: u64,
    rng: &mut rand::rngs::SmallRng,
) -> (f64, f64) {
    let mut pht = Pht::new(dht, paper::DOMAIN_LO, paper::DOMAIN_HI);
    // Populate with ~N records so the trie depth is in the paper's regime.
    for h in 0..n as u64 {
        pht.insert(rng.gen_range(paper::DOMAIN_LO..=paper::DOMAIN_HI), h);
    }
    let _ = seed;
    let (mut sum, mut max) = (0f64, 0f64);
    for _ in 0..queries {
        let lo = rng.gen_range(paper::DOMAIN_LO..(paper::DOMAIN_HI - range));
        let from = pht.dht().random_node(rng);
        let out = pht.range_query(from, lo, lo + range);
        sum += out.delay as f64;
        max = max.max(out.delay as f64);
    }
    (sum / queries as f64, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_quick_has_all_schemes_measured() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 8);
        let schemes: Vec<&str> = t.rows.iter().map(|r| r[0].as_str()).collect();
        assert!(schemes[0].starts_with("Armada"));
        assert!(schemes.iter().any(|s| s.starts_with("DCF-CAN")));
        assert!(schemes.iter().any(|s| s.contains("PHT") && s.contains("chord")));
        assert!(schemes.iter().any(|s| s.starts_with("SeqWalk")));
        assert!(schemes.iter().any(|s| s.starts_with("Skip Graph")));
        assert!(schemes.iter().any(|s| s.starts_with("Squid")));
        assert!(schemes.iter().any(|s| s.starts_with("SCRAP")));
        // Armada is the only measured delay-bounded row, and every row now
        // carries a measured max-delay figure.
        assert_eq!(t.rows[0][7], "yes");
        for row in &t.rows[1..] {
            assert_ne!(row[7], "yes", "{} must not be delay-bounded", row[0]);
            assert!(row[6].parse::<f64>().is_ok(), "{} max delay must be measured", row[0]);
        }
        // Armada's average beats every other scheme's average.
        let pira_avg: f64 = t.rows[0][5].split(' ').next().unwrap().parse().unwrap();
        for row in &t.rows[1..] {
            let avg: f64 = row[5].split(' ').next().unwrap().parse().unwrap();
            assert!(pira_avg < avg, "{} should be slower than Armada", row[0]);
        }
    }
}
