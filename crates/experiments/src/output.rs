//! Table rendering (markdown to stdout, CSV to `target/experiments/`).

use std::fmt::Write as _;
use std::path::PathBuf;

/// A rectangular result table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Human-readable experiment title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of pre-formatted cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of already-formatted cells.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the header.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Formats a float with sensible precision for display.
    pub fn fmt_f64(x: f64) -> String {
        if x == x.trunc() && x.abs() < 1e9 {
            format!("{x:.0}")
        } else {
            format!("{x:.2}")
        }
    }

    /// Renders as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## {}\n", self.title);
        let _ = writeln!(out, "| {} |", self.columns.join(" | "));
        let _ =
            writeln!(out, "|{}|", self.columns.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Renders as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ =
            writeln!(out, "{}", self.columns.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        out
    }

    /// Writes the CSV under [`output_dir`] as `<name>.csv` and returns the
    /// path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, name: &str) -> std::io::Result<PathBuf> {
        let dir = output_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.csv"));
        std::fs::write(&path, self.to_csv())?;
        Ok(path)
    }

    /// Prints markdown to stdout and writes the CSV; the binaries' shared
    /// epilogue.
    pub fn emit(&self, name: &str) {
        print!("{}", self.to_markdown());
        match self.write_csv(name) {
            Ok(path) => println!("\n[csv] {}\n", path.display()), // detlint: allow(D5) — the binaries' shared stdout epilogue; never on a report path
            Err(e) => eprintln!("warning: could not write csv: {e}"), // detlint: allow(D5) — CLI warning for the same epilogue
        }
    }
}

/// Where experiment CSVs land: `target/experiments/` relative to the
/// workspace (or the current directory when run elsewhere).
pub fn output_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/experiments; hop to the workspace root.
    let base = std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| PathBuf::from(d).join("../.."))
        .unwrap_or_else(|_| PathBuf::from("."));
    base.join("target/experiments")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Demo", &["x", "y"]);
        t.push_row(vec!["1".into(), "2.50".into()]);
        t.push_row(vec!["2".into(), "3.00".into()]);
        t
    }

    #[test]
    fn markdown_shape() {
        let md = sample().to_markdown();
        assert!(md.contains("## Demo"));
        assert!(md.contains("| x | y |"));
        assert!(md.contains("| 1 | 2.50 |"));
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("T", &["a"]);
        t.push_row(vec!["x,y".into()]);
        assert!(t.to_csv().contains("\"x,y\""));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("T", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn fmt_f64_trims_integers() {
        assert_eq!(Table::fmt_f64(3.0), "3");
        assert_eq!(Table::fmt_f64(1.23456), "1.23");
    }
}
