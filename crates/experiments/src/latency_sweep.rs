//! R4 — the delay bound in milliseconds: every scheme × every network
//! cost model, swept over range size and network size.
//!
//! The paper states its headline bound — PIRA's query delay stays below
//! `log₂ N` *hops* regardless of the queried range — on a network where
//! every edge costs the same. This experiment re-examines that bound in
//! **virtual milliseconds** under the [`NetModel`]
//! catalog: homogeneous `lan`/`wan` (where hop counts and wall clocks are
//! proportional and the bound survives trivially), `cluster` transit-stub
//! (where some edges cost 30× others), and `straggler` (where a
//! deterministic 1-in-16 slow-peer set taxes every path that touches it).
//!
//! Two findings the tests pin:
//!
//! * Hop metrics are **model-invariant** — the cost layer observes message
//!   paths, it never perturbs them — so the `unit` column of this sweep
//!   reproduces the Figure 5/7 hop numbers exactly.
//! * Under `straggler`, PIRA's *latency* is no longer bounded by
//!   `log₂ N · max_edge`-style reasoning alone — a wide range almost
//!   surely touches a straggler destination, so the critical path absorbs
//!   the straggler tax — but it still beats the sequential-walk class by
//!   an order of magnitude, because the walk *sums* straggler taxes along
//!   the run while PIRA's parallel descent pays each at most once on the
//!   critical path. The hop bound translates to a latency bound up to the
//!   (bounded) per-path straggler tax.
//!
//! Filterable like the other sweeps: [`LatencySweepConfig`] selects
//! schemes, net models, and the worker thread count, mirrored by the
//! binary's `--schemes`, `--net`, and `--threads` flags.

use crate::output::Table;
use crate::{paper, standard_registry, Scale};
use dht_api::{BuildParams, DriverReport, NetModel, ParallelDriver, WorkloadGen, NET_MODEL_NAMES};
use rand::Rng;

/// Which axis a [`LatencyPoint`] sits on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepAxis {
    /// Fixed `N`, swept range size (the Figure 5 shape, in ms).
    RangeSize,
    /// Fixed range size, swept `N` (the Figure 7 shape, in ms).
    NetworkSize,
}

impl SweepAxis {
    /// Short label for tables/CSV.
    pub fn label(self) -> &'static str {
        match self {
            SweepAxis::RangeSize => "range",
            SweepAxis::NetworkSize => "n",
        }
    }
}

/// What the sweep runs: scale plus optional scheme/net filters — the
/// all-defaults config is the committed R4 grid.
#[derive(Debug, Clone)]
pub struct LatencySweepConfig {
    /// Experiment scale (network sizes, queries per point).
    pub scale: Scale,
    /// Schemes to sweep; `None` = every registered single-attribute
    /// scheme.
    pub schemes: Option<Vec<String>>,
    /// Net models to sweep; the default is the whole catalog.
    pub nets: Vec<String>,
    /// Worker threads for the parallel driver (reports are identical for
    /// any value; this only tunes wall-clock time).
    pub threads: usize,
}

impl LatencySweepConfig {
    /// The default sweep at the given scale.
    pub fn new(scale: Scale) -> Self {
        LatencySweepConfig {
            scale,
            schemes: None,
            nets: NET_MODEL_NAMES.iter().map(|s| s.to_string()).collect(),
            threads: dht_api::default_threads(),
        }
    }

    /// The scheme names this config selects, in registry order.
    pub fn scheme_names(&self) -> Vec<String> {
        let all: Vec<String> =
            standard_registry().single_names().into_iter().map(str::to_string).collect();
        match &self.schemes {
            None => all,
            Some(filter) => all.into_iter().filter(|n| filter.iter().any(|f| f == n)).collect(),
        }
    }

    /// Fixed network size for the range-size axis.
    fn range_axis_n(&self) -> usize {
        match self.scale {
            Scale::Full => 1000,
            Scale::Quick => 200,
        }
    }

    /// Range sizes swept on the range-size axis.
    fn range_sizes(&self) -> Vec<f64> {
        match self.scale {
            Scale::Full => paper::RANGE_SIZES.to_vec(),
            Scale::Quick => vec![2.0, 50.0, 300.0],
        }
    }

    /// Network sizes swept on the network-size axis (fixed range
    /// [`paper::FIG78_RANGE`]).
    fn network_sizes(&self) -> Vec<usize> {
        match self.scale {
            Scale::Full => vec![1000, 2000, 4000],
            Scale::Quick => vec![150, 300],
        }
    }
}

/// One scheme × net model × axis point.
#[derive(Debug, Clone)]
pub struct LatencyPoint {
    /// Registry name of the scheme.
    pub scheme: String,
    /// Net model name from the catalog.
    pub net: String,
    /// Which sweep axis this point belongs to.
    pub axis: SweepAxis,
    /// Network size the point ran at.
    pub n_peers: usize,
    /// Queried range size (attribute units).
    pub range_size: f64,
    /// The full metric report (hop `delay` and virtual-ms `latency`).
    pub report: DriverReport,
}

/// Runs the default sweep (every scheme × every net model).
///
/// # Panics
///
/// Panics if a scheme fails to build or errs on a fault-free query — a
/// sweep with silently missing cells would be worse than none.
pub fn run_points(scale: Scale) -> Vec<LatencyPoint> {
    run_points_with(&LatencySweepConfig::new(scale))
}

/// Runs the sweep under an explicit config (scheme/net/thread filters).
///
/// # Panics
///
/// As [`run_points`].
pub fn run_points_with(cfg: &LatencySweepConfig) -> Vec<LatencyPoint> {
    let mut points = Vec::new();
    // Axis 1: fixed N, swept range size.
    let n = cfg.range_axis_n();
    for net_name in &cfg.nets {
        for scheme_name in cfg.scheme_names() {
            let scheme = build_loaded(cfg, &scheme_name, net_name, n);
            for &size in &cfg.range_sizes() {
                let report = measure(cfg, scheme.as_ref(), size, n);
                points.push(LatencyPoint {
                    scheme: scheme_name.clone(),
                    net: net_name.clone(),
                    axis: SweepAxis::RangeSize,
                    n_peers: n,
                    range_size: size,
                    report,
                });
            }
        }
    }
    // Axis 2: fixed range size, swept N.
    for net_name in &cfg.nets {
        for &n in &cfg.network_sizes() {
            for scheme_name in cfg.scheme_names() {
                let scheme = build_loaded(cfg, &scheme_name, net_name, n);
                let report = measure(cfg, scheme.as_ref(), paper::FIG78_RANGE, n);
                points.push(LatencyPoint {
                    scheme: scheme_name.clone(),
                    net: net_name.clone(),
                    axis: SweepAxis::NetworkSize,
                    n_peers: n,
                    range_size: paper::FIG78_RANGE,
                    report,
                });
            }
        }
    }
    points
}

/// Builds one scheme under one net model at size `n` and publishes `n`
/// records — the same build/data seed for every net model, so hop metrics
/// pair bit-for-bit across the model axis.
fn build_loaded(
    cfg: &LatencySweepConfig,
    scheme_name: &str,
    net_name: &str,
    n: usize,
) -> Box<dyn dht_api::RangeScheme> {
    let registry = standard_registry();
    let domain = (paper::DOMAIN_LO, paper::DOMAIN_HI);
    // Named `net_model`, not `net`: the `LatencyPoint.net` label field is a
    // plain String, and sharing the name would pull its clone under D6.
    let net_model = NetModel::named(net_name).expect("cataloged net model");
    let object_id_len = if cfg.scale == Scale::Full { paper::OBJECT_ID_LEN } else { 32 };
    let params = BuildParams::new(n, domain.0, domain.1)
        .with_object_id_len(object_id_len)
        .with_net(net_model);
    // Seed depends on (scheme, n) but NOT the net model: identical
    // networks and data under every model.
    let mut rng = simnet::rng_from_seed(0x1a7e ^ dht_api::fnv1a(scheme_name.as_bytes()) ^ n as u64);
    let mut scheme = registry.build_single(scheme_name, &params, &mut rng).expect("scheme builds");
    for h in 0..n as u64 {
        scheme.publish(rng.gen_range(domain.0..=domain.1), h).expect("publish");
    }
    scheme
}

/// One measurement cell: `queries` fixed-width random ranges through the
/// parallel driver (driver seed depends on the point, not the net model,
/// so queries pair across models too).
fn measure(
    cfg: &LatencySweepConfig,
    scheme: &dyn dht_api::RangeScheme,
    range_size: f64,
    n: usize,
) -> DriverReport {
    let workload = WorkloadGen::uniform((paper::DOMAIN_LO, paper::DOMAIN_HI), range_size);
    let driver = ParallelDriver {
        queries: cfg.scale.queries(),
        seed: 0x5eed ^ range_size.to_bits() ^ n as u64,
        threads: cfg.threads,
        shard_salt: 0,
        metrics: false,
    };
    let report = driver.run(scheme, &workload).expect("fault-free queries succeed");
    assert_eq!(report.exact_rate, 1.0, "{} missed destinations fault-free", scheme.scheme_name());
    report
}

/// Runs the sweep and renders the latency table.
pub fn run(scale: Scale) -> Table {
    run_with(&LatencySweepConfig::new(scale))
}

/// Renders the table for an explicit config.
pub fn run_with(cfg: &LatencySweepConfig) -> Table {
    let points = run_points_with(cfg);
    let mut t = Table::new(
        "R4 — query latency in virtual ms under the net-model catalog",
        &[
            "scheme",
            "net",
            "axis",
            "N",
            "range",
            "delay_mean (hops)",
            "latency_mean (ms)",
            "latency_p95",
            "latency_p99",
            "latency_max",
        ],
    );
    for p in &points {
        t.push_row(vec![
            p.scheme.clone(),
            p.net.clone(),
            p.axis.label().to_string(),
            p.n_peers.to_string(),
            format!("{:.0}", p.range_size),
            format!("{:.2}", p.report.delay.mean),
            format!("{:.2}", p.report.latency.mean),
            format!("{:.1}", p.report.latency.p95),
            format!("{:.1}", p.report.latency.p99),
            format!("{:.0}", p.report.latency.max),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(schemes: &[&str], nets: &[&str]) -> LatencySweepConfig {
        LatencySweepConfig {
            schemes: Some(schemes.iter().map(|s| s.to_string()).collect()),
            nets: nets.iter().map(|s| s.to_string()).collect(),
            ..LatencySweepConfig::new(Scale::Quick)
        }
    }

    #[test]
    fn grid_covers_schemes_nets_and_both_axes() {
        let cfg = quick_cfg(&["pira", "skipgraph"], &["unit", "wan"]);
        let points = run_points_with(&cfg);
        // 2 schemes × 2 nets × (3 range sizes + 2 network sizes).
        assert_eq!(points.len(), 2 * 2 * (3 + 2));
        assert!(points.iter().any(|p| p.axis == SweepAxis::RangeSize));
        assert!(points.iter().any(|p| p.axis == SweepAxis::NetworkSize));
        for p in &points {
            assert_eq!(p.report.exact_rate, 1.0, "{}/{}", p.scheme, p.net);
            assert!(p.report.latency.count > 0);
        }
        // Table mirrors the grid.
        assert_eq!(run_with(&cfg).rows.len(), points.len());
    }

    #[test]
    fn hop_delay_is_identical_across_net_models_per_cell() {
        let cfg = quick_cfg(&["pira", "dcf-can"], &["unit", "straggler", "cluster"]);
        let points = run_points_with(&cfg);
        for p in &points {
            let unit = points
                .iter()
                .find(|q| {
                    q.net == "unit"
                        && q.scheme == p.scheme
                        && q.axis == p.axis
                        && q.n_peers == p.n_peers
                        && q.range_size == p.range_size
                })
                .expect("unit twin exists");
            assert_eq!(
                p.report.delay, unit.report.delay,
                "{}@{} hop delay drifted from unit",
                p.scheme, p.net
            );
            assert_eq!(p.report.messages, unit.report.messages);
        }
    }

    #[test]
    fn pira_latency_bound_survives_the_straggler_model_relative_to_seqwalk() {
        // The headline question: does the hop bound still translate to a
        // latency bound when 1 in 16 peers is slow? Relative to the
        // sequential-walk class it must — the walk sums straggler taxes
        // along the destination run, PIRA's parallel descent pays each at
        // most once on its critical path.
        let cfg = quick_cfg(&["pira", "seqwalk"], &["straggler"]);
        let points = run_points_with(&cfg);
        let widest = |scheme: &str| {
            points
                .iter()
                .filter(|p| p.scheme == scheme && p.axis == SweepAxis::RangeSize)
                .max_by(|a, b| a.range_size.total_cmp(&b.range_size))
                .expect("range axis ran")
        };
        let pira = widest("pira");
        let walk = widest("seqwalk");
        assert!(
            pira.report.latency.mean < walk.report.latency.mean / 2.0,
            "pira {} !< seqwalk {} / 2 under straggler",
            pira.report.latency.mean,
            walk.report.latency.mean
        );
        // And PIRA's own latency grows sub-linearly in the range: the
        // 150× wider query costs nowhere near 150× the milliseconds.
        let narrow = points
            .iter()
            .filter(|p| p.scheme == "pira" && p.axis == SweepAxis::RangeSize)
            .min_by(|a, b| a.range_size.total_cmp(&b.range_size))
            .unwrap();
        assert!(
            pira.report.latency.mean < 20.0 * narrow.report.latency.mean.max(1.0),
            "pira latency blew up with range size: {} vs {}",
            pira.report.latency.mean,
            narrow.report.latency.mean
        );
    }

    #[test]
    fn wan_scales_every_scheme_by_the_edge_cost_band() {
        let cfg = quick_cfg(&["pira"], &["unit", "wan"]);
        let points = run_points_with(&cfg);
        for p in points.iter().filter(|p| p.net == "wan") {
            let unit = points
                .iter()
                .find(|q| {
                    q.net == "unit"
                        && q.axis == p.axis
                        && q.range_size == p.range_size
                        && q.n_peers == p.n_peers
                })
                .unwrap();
            // Every wan edge costs 30–90 unit edges.
            assert!(p.report.latency.mean >= 30.0 * unit.report.latency.mean);
            assert!(p.report.latency.mean <= 90.0 * unit.report.latency.mean + 1e-9);
        }
    }
}
