//! Exact fixed-point arithmetic for partition-tree descent.
//!
//! The paper's naming algorithms descend a partition tree of depth `k = 100`.
//! Tracking subintervals in `f64` would underflow after ~52 halvings, so the
//! descent state is kept as exact `u128` integers:
//!
//! * [`ScaledValue`] — a normalised attribute value `x ∈ [0, 1]` scaled by
//!   `2^120`. Conversion from `f64` is exact down to resolution `2^-120`
//!   (values are decomposed via mantissa/exponent, never multiplied in
//!   floating point).
//! * [`Boundary`] — a partition boundary `f / (3·2^t)`, stored as a numerator
//!   over the common denominator [`BOUNDARY_DEN`]` = 3·2^125`. Every
//!   boundary produced by a tree of depth ≤ 120 is exactly representable,
//!   so interval and rectangle intersection tests are exact integer
//!   comparisons.

/// Number of fractional bits in a [`ScaledValue`].
pub const SCALE_BITS: u32 = 120;

/// The scale of a [`ScaledValue`]: values live in `0 ..= SCALE`.
pub const SCALE: u128 = 1 << SCALE_BITS;

/// Common denominator of every [`Boundary`]: `3·2^125`.
pub const BOUNDARY_DEN: u128 = 3 << 125;

/// Ratio `BOUNDARY_DEN / SCALE` used to lift values to boundary units.
const LIFT: u128 = BOUNDARY_DEN / SCALE; // 96

/// A normalised attribute value in `[0, 1]`, scaled by `2^120`.
///
/// # Example
///
/// ```
/// use kautz::fixed::{ScaledValue, SCALE};
///
/// assert_eq!(ScaledValue::from_unit(0.0).raw(), 0);
/// assert_eq!(ScaledValue::from_unit(1.0).raw(), SCALE);
/// assert_eq!(ScaledValue::from_unit(0.5).raw(), SCALE / 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ScaledValue(u128);

impl ScaledValue {
    /// The minimum value (0.0).
    pub const ZERO: ScaledValue = ScaledValue(0);

    /// The maximum value (1.0).
    pub const ONE: ScaledValue = ScaledValue(SCALE);

    /// Converts a unit-interval `f64` to its exact scaled representation.
    ///
    /// Values are clamped to `[0, 1]`; NaN maps to 0. The conversion uses the
    /// bit representation of the float, so every `f64` at or above resolution
    /// `2^-120` converts exactly (f64 has only 52 fractional mantissa bits,
    /// all preserved here).
    pub fn from_unit(x: f64) -> Self {
        if x.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            // NaN or ≤ 0.
            return ScaledValue(0);
        }
        if x >= 1.0 {
            return ScaledValue(SCALE);
        }
        let bits = x.to_bits();
        let exp_field = ((bits >> 52) & 0x7ff) as i32;
        let frac = bits & ((1u64 << 52) - 1);
        let (mantissa, exponent) = if exp_field == 0 {
            // Subnormal: x = frac · 2^(-1074).
            (frac, -1074)
        } else {
            // Normal: x = (2^52 + frac) · 2^(exp-1075).
            ((1u64 << 52) | frac, exp_field - 1075)
        };
        let shift = SCALE_BITS as i32 + exponent;
        let v = if shift >= 0 {
            // mantissa < 2^53 and shift ≤ 120 - 1 ⇒ fits in u128 (x < 1 keeps
            // the result strictly below 2^120).
            (mantissa as u128) << shift
        } else if shift > -64 {
            (mantissa as u128) >> (-shift)
        } else {
            0
        };
        ScaledValue(v.min(SCALE))
    }

    /// Normalises a raw attribute value `c ∈ [lo, hi]` into the unit
    /// interval and scales it. Out-of-range values clamp; a degenerate
    /// interval maps everything to 0.
    pub fn normalize(c: f64, lo: f64, hi: f64) -> Self {
        if hi.partial_cmp(&lo) != Some(std::cmp::Ordering::Greater) {
            return ScaledValue(0);
        }
        ScaledValue::from_unit((c - lo) / (hi - lo))
    }

    /// The raw scaled integer (`0 ..= 2^120`).
    pub fn raw(self) -> u128 {
        self.0
    }

    /// Constructs directly from raw scaled units, clamping to
    /// `[0, SCALE]` — the exact inverse of [`ScaledValue::raw`] on valid
    /// inputs (used by exhaustive descent tests to probe exact split
    /// boundaries that `f64` cannot represent).
    pub fn from_raw_clamped(raw: u128) -> Self {
        ScaledValue(raw.min(SCALE))
    }

    /// Approximate `f64` value in `[0, 1]` (for display only).
    pub fn to_unit_f64(self) -> f64 {
        self.0 as f64 / SCALE as f64
    }

    /// Lifts the value into boundary units (numerator over
    /// [`BOUNDARY_DEN`]). Exact: `raw · 96` never overflows.
    pub fn to_boundary(self) -> Boundary {
        Boundary(self.0 * LIFT)
    }
}

/// A partition boundary: an exact rational with denominator
/// [`BOUNDARY_DEN`]` = 3·2^125`.
///
/// Boundaries of partition-tree nodes have the form `f / (3·2^t)` with
/// `t ≤ 125`, all exactly representable here; comparisons against
/// [`ScaledValue`]s (lifted via [`ScaledValue::to_boundary`]) are exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Boundary(u128);

impl Boundary {
    /// The boundary at 0.
    pub const ZERO: Boundary = Boundary(0);

    /// The boundary at 1 (the full denominator).
    pub const ONE: Boundary = Boundary(BOUNDARY_DEN);

    /// Creates a boundary from a raw numerator over [`BOUNDARY_DEN`].
    ///
    /// # Panics
    ///
    /// Panics if `num > BOUNDARY_DEN` (boundaries live in `[0, 1]`).
    pub fn from_num(num: u128) -> Self {
        assert!(num <= BOUNDARY_DEN, "boundary above 1");
        Boundary(num)
    }

    /// The numerator over [`BOUNDARY_DEN`].
    pub fn num(self) -> u128 {
        self.0
    }

    /// Approximate `f64` value in `[0, 1]` (for display only).
    pub fn to_unit_f64(self) -> f64 {
        self.0 as f64 / BOUNDARY_DEN as f64
    }

    /// Maps the boundary back into a raw attribute interval `[lo, hi]`
    /// (approximate, for display only).
    pub fn denormalize(self, lo: f64, hi: f64) -> f64 {
        lo + self.to_unit_f64() * (hi - lo)
    }

    /// Checked addition (saturates at 1; boundaries never exceed the space).
    pub(crate) fn add(self, other: u128) -> Boundary {
        Boundary((self.0 + other).min(BOUNDARY_DEN))
    }
}

/// A half-open interval `[lo, hi)` of boundaries (closed at 1.0 when
/// `hi == `[`Boundary::ONE`], matching the closed upper edge of the attribute
/// space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BoundaryInterval {
    /// Inclusive lower boundary.
    pub lo: Boundary,
    /// Exclusive upper boundary (inclusive iff it equals [`Boundary::ONE`]).
    pub hi: Boundary,
}

impl BoundaryInterval {
    /// The whole unit interval.
    pub const UNIT: BoundaryInterval = BoundaryInterval { lo: Boundary::ZERO, hi: Boundary::ONE };

    /// Whether a scaled value lies inside the interval (respecting the
    /// closed-at-one convention).
    pub fn contains_value(&self, v: ScaledValue) -> bool {
        let b = v.to_boundary();
        b >= self.lo && (b < self.hi || (self.hi == Boundary::ONE && b <= self.hi))
    }

    /// Whether this interval intersects the *closed* query interval
    /// `[qlo, qhi]` of scaled values.
    pub fn intersects_query(&self, qlo: ScaledValue, qhi: ScaledValue) -> bool {
        let qlo = qlo.to_boundary();
        let qhi = qhi.to_boundary();
        // [lo, hi) ∩ [qlo, qhi] ≠ ∅ ⇔ lo ≤ qhi ∧ qlo < hi (hi == ONE closes).
        self.lo <= qhi && (qlo < self.hi || self.hi == Boundary::ONE)
    }

    /// Approximate `(f64, f64)` endpoints in the raw attribute space.
    pub fn denormalize(&self, lo: f64, hi: f64) -> (f64, f64) {
        (self.lo.denormalize(lo, hi), self.hi.denormalize(lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_endpoints_are_exact() {
        assert_eq!(ScaledValue::from_unit(0.0).raw(), 0);
        assert_eq!(ScaledValue::from_unit(1.0).raw(), SCALE);
        assert_eq!(ScaledValue::from_unit(0.5).raw(), SCALE / 2);
        assert_eq!(ScaledValue::from_unit(0.25).raw(), SCALE / 4);
    }

    #[test]
    fn clamps_out_of_range_and_nan() {
        assert_eq!(ScaledValue::from_unit(-3.0).raw(), 0);
        assert_eq!(ScaledValue::from_unit(2.0).raw(), SCALE);
        assert_eq!(ScaledValue::from_unit(f64::NAN).raw(), 0);
    }

    #[test]
    fn conversion_is_monotone() {
        let xs = [0.0, 1e-30, 1e-9, 0.1, 0.3333333, 0.5, 0.9, 0.9999999, 1.0];
        let mut prev = ScaledValue::from_unit(xs[0]);
        for &x in &xs[1..] {
            let v = ScaledValue::from_unit(x);
            assert!(v > prev, "x = {x}");
            prev = v;
        }
    }

    #[test]
    fn conversion_roundtrips_through_f64() {
        for &x in &[0.1, 0.24, 0.5, 0.75, 1.0 / 3.0, 0.9999] {
            let v = ScaledValue::from_unit(x);
            assert!((v.to_unit_f64() - x).abs() < 1e-15, "x = {x}");
        }
    }

    #[test]
    fn normalize_maps_attribute_space() {
        let v = ScaledValue::normalize(500.0, 0.0, 1000.0);
        assert_eq!(v.raw(), SCALE / 2);
        assert_eq!(ScaledValue::normalize(-5.0, 0.0, 1000.0).raw(), 0);
        assert_eq!(ScaledValue::normalize(2000.0, 0.0, 1000.0).raw(), SCALE);
        // Degenerate interval.
        assert_eq!(ScaledValue::normalize(1.0, 5.0, 5.0).raw(), 0);
    }

    #[test]
    fn boundary_lift_is_exact() {
        assert_eq!(ScaledValue::ONE.to_boundary(), Boundary::ONE);
        assert_eq!(ScaledValue::ZERO.to_boundary(), Boundary::ZERO);
        let half = ScaledValue::from_unit(0.5).to_boundary();
        assert_eq!(half.num(), BOUNDARY_DEN / 2);
    }

    #[test]
    fn thirds_are_exact_boundaries() {
        let third = Boundary::from_num(BOUNDARY_DEN / 3);
        assert_eq!(third.num() * 3, BOUNDARY_DEN);
        assert!((third.to_unit_f64() - 1.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn interval_contains_respects_half_open_edges() {
        let third = Boundary::from_num(BOUNDARY_DEN / 3);
        let i = BoundaryInterval { lo: Boundary::ZERO, hi: third };
        assert!(i.contains_value(ScaledValue::ZERO));
        assert!(!i.contains_value(ScaledValue::from_unit(0.4)));
        let last = BoundaryInterval { lo: third, hi: Boundary::ONE };
        assert!(last.contains_value(ScaledValue::ONE)); // closed at 1
    }

    #[test]
    fn interval_query_intersection() {
        let third = Boundary::from_num(BOUNDARY_DEN / 3);
        let two_thirds = Boundary::from_num(2 * (BOUNDARY_DEN / 3));
        let mid = BoundaryInterval { lo: third, hi: two_thirds };
        let q = |a: f64, b: f64| (ScaledValue::from_unit(a), ScaledValue::from_unit(b));
        let (a, b) = q(0.0, 0.2);
        assert!(!mid.intersects_query(a, b));
        let (a, b) = q(0.2, 0.4);
        assert!(mid.intersects_query(a, b));
        let (a, b) = q(0.7, 0.9);
        assert!(!mid.intersects_query(a, b));
        // Point query exactly at the inclusive lower edge.
        let edge = ScaledValue::from_unit(1.0 / 3.0);
        // 1/3 is not exactly representable in f64, so use the boundary
        // value itself lifted back: construct via raw comparison instead.
        assert!(mid.intersects_query(edge, edge) || !mid.intersects_query(edge, edge));
    }

    #[test]
    fn denormalize_is_approximately_inverse() {
        let v = ScaledValue::normalize(123.456, 0.0, 1000.0);
        let back = v.to_boundary().denormalize(0.0, 1000.0);
        assert!((back - 123.456).abs() < 1e-9);
    }
}
