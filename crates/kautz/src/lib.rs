//! Kautz-namespace mathematics for the Armada / FISSIONE stack.
//!
//! This crate implements the combinatorial substrate shared by the
//! FISSIONE constant-degree DHT (INFOCOM 2005) and the Armada delay-bounded
//! range-query scheme (ICDCS 2006):
//!
//! * [`KautzStr`] — validated Kautz strings (no two adjacent symbols equal)
//!   over the alphabet `{0, …, d}`, with the lexicographic order `⪯`,
//!   prefix/suffix algebra, and a rank/unrank bijection onto
//!   `0 .. (d+1)·d^(n-1)`.
//! * [`KautzRegion`] — the set of length-`k` Kautz strings between two
//!   endpoints (Definition 1 of the paper), with prefix-intersection tests and
//!   the common-prefix splitting rule used by PIRA.
//! * [`KautzGraph`] — the static Kautz graph `K(d,k)`, used as ground truth
//!   for topology properties in tests.
//! * [`partition`] — the partition tree `P(2,k)` (paper §4.1, Figure 3) with
//!   **exact `u128` fixed-point arithmetic**, so naming stays correct for the
//!   paper's `k = 100` where `f64` intervals would underflow.
//! * [`naming`] — the order-preserving [`SingleHash`](naming::SingleHash)
//!   (Definition 2: interval-preserving) and partial-order-preserving
//!   [`MultiHash`](naming::MultiHash) (Definitions 3–4) object-naming
//!   algorithms.
//!
//! # Example
//!
//! ```
//! use kautz::{KautzStr, naming::SingleHash};
//!
//! // The paper's running example: attribute space [0, 1], k = 4.
//! let naming = SingleHash::new(0.0, 1.0, 4)?;
//! // Attribute value 0.1 lies in the leaf labelled 0120 (paper §4.1).
//! assert_eq!(naming.object_id(0.1), "0120".parse::<KautzStr>()?);
//! // The query [0.1, 0.24] maps to the Kautz region ⟨0120, 0202⟩.
//! let region = naming.region(0.1, 0.24)?;
//! assert_eq!(region.low().to_string(), "0120");
//! assert_eq!(region.high().to_string(), "0202");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod graph;
mod region;
mod string;

pub mod fixed;
pub mod naming;
pub mod partition;

pub use graph::KautzGraph;
pub use region::KautzRegion;
pub use string::{KautzStr, ParseKautzStrError};

/// Errors produced when constructing or combining Kautz strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KautzError {
    /// A symbol exceeded the base (symbols must lie in `0..=base`).
    SymbolOutOfRange {
        /// The offending symbol.
        symbol: u8,
        /// The base `d` of the string (alphabet `{0..=d}`).
        base: u8,
    },
    /// Two adjacent symbols were equal, which Kautz strings forbid.
    AdjacentRepeat {
        /// Index of the first symbol of the repeated pair.
        index: usize,
    },
    /// Operands had different bases.
    BaseMismatch {
        /// Base of the left operand.
        left: u8,
        /// Base of the right operand.
        right: u8,
    },
    /// Operands had different lengths where equal lengths are required.
    LengthMismatch {
        /// Length of the left operand.
        left: usize,
        /// Length of the right operand.
        right: usize,
    },
    /// A region was constructed with `low > high`.
    EmptyRegion,
    /// A rank was out of range for the requested string length.
    RankOutOfRange {
        /// The offending rank.
        rank: u128,
        /// Number of Kautz strings of the requested shape.
        count: u128,
    },
    /// The requested length is not supported (`0` or too large for `u128`
    /// rank arithmetic).
    UnsupportedLength {
        /// The offending length.
        len: usize,
    },
}

impl std::fmt::Display for KautzError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KautzError::SymbolOutOfRange { symbol, base } => {
                write!(f, "symbol {symbol} out of range for base {base}")
            }
            KautzError::AdjacentRepeat { index } => {
                write!(f, "adjacent symbols at indices {index} and {} repeat", index + 1)
            }
            KautzError::BaseMismatch { left, right } => {
                write!(f, "base mismatch: {left} vs {right}")
            }
            KautzError::LengthMismatch { left, right } => {
                write!(f, "length mismatch: {left} vs {right}")
            }
            KautzError::EmptyRegion => write!(f, "region endpoints out of order (low > high)"),
            KautzError::RankOutOfRange { rank, count } => {
                write!(f, "rank {rank} out of range (space has {count} strings)")
            }
            KautzError::UnsupportedLength { len } => {
                write!(f, "unsupported Kautz string length {len}")
            }
        }
    }
}

impl std::error::Error for KautzError {}
