//! Validated Kautz strings and their order/prefix algebra.

use crate::KautzError;
use rand::Rng;
use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

/// The default base used throughout the Armada paper (`d = 2`, alphabet
/// `{0, 1, 2}`).
pub const DEFAULT_BASE: u8 = 2;

/// A Kautz string: a sequence of symbols over `{0, …, d}` in which no two
/// adjacent symbols are equal.
///
/// Kautz strings of length `k` and base `d` label the nodes of the Kautz
/// graph `K(d,k)`; in FISSIONE they are used both as variable-length PeerIDs
/// and as fixed-length (`k = 100`) ObjectIDs. The empty string is valid and
/// acts as the prefix of everything (it is the label of the partition-tree
/// root).
///
/// # Ordering
///
/// `Ord` implements the lexicographic order `⪯` used by the paper: symbols
/// are compared position-wise, and a proper prefix sorts before its
/// extensions. Strings of different bases compare by their symbols first and
/// base last; mixing bases is supported but meaningless and never done by the
/// higher layers.
///
/// # Example
///
/// ```
/// use kautz::KautzStr;
///
/// let a: KautzStr = "010".parse()?;
/// let b: KautzStr = "012".parse()?;
/// assert!(a < b);
/// assert!(a.is_prefix_of(&"0102".parse()?));
/// assert_eq!(KautzStr::count(2, 3), 12); // |KautzSpace(2,3)| = 3·2²
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct KautzStr {
    base: u8,
    syms: Vec<u8>,
}

impl KautzStr {
    /// Creates a Kautz string from raw symbols, validating the Kautz
    /// property.
    ///
    /// # Errors
    ///
    /// Returns [`KautzError::SymbolOutOfRange`] if a symbol exceeds `base`,
    /// or [`KautzError::AdjacentRepeat`] if two adjacent symbols are equal.
    pub fn new(base: u8, syms: impl Into<Vec<u8>>) -> Result<Self, KautzError> {
        let syms = syms.into();
        for (i, &s) in syms.iter().enumerate() {
            if s > base {
                return Err(KautzError::SymbolOutOfRange { symbol: s, base });
            }
            if i > 0 && syms[i - 1] == s {
                return Err(KautzError::AdjacentRepeat { index: i - 1 });
            }
        }
        Ok(KautzStr { base, syms })
    }

    /// Creates the empty Kautz string of the given base.
    pub fn empty(base: u8) -> Self {
        KautzStr { base, syms: Vec::new() }
    }

    /// Parses a Kautz string of an explicit base from decimal digits.
    ///
    /// # Errors
    ///
    /// Returns an error on non-digit characters or Kautz-property violations.
    pub fn parse_with_base(base: u8, s: &str) -> Result<Self, ParseKautzStrError> {
        let mut syms = Vec::with_capacity(s.len());
        for ch in s.chars() {
            let d = ch.to_digit(10).ok_or(ParseKautzStrError::NotADigit(ch))?;
            syms.push(d as u8);
        }
        KautzStr::new(base, syms).map_err(ParseKautzStrError::Invalid)
    }

    /// The base `d` of this string (alphabet `{0..=d}`).
    pub fn base(&self) -> u8 {
        self.base
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.syms.len()
    }

    /// Whether the string has no symbols.
    pub fn is_empty(&self) -> bool {
        self.syms.is_empty()
    }

    /// The symbols as a slice.
    pub fn symbols(&self) -> &[u8] {
        &self.syms
    }

    /// First symbol, if any.
    pub fn first(&self) -> Option<u8> {
        self.syms.first().copied()
    }

    /// Last symbol, if any.
    pub fn last(&self) -> Option<u8> {
        self.syms.last().copied()
    }

    /// Appends a symbol, validating the Kautz property.
    ///
    /// # Errors
    ///
    /// Returns an error if the symbol exceeds the base or repeats the last
    /// symbol.
    pub fn push(&mut self, sym: u8) -> Result<(), KautzError> {
        if sym > self.base {
            return Err(KautzError::SymbolOutOfRange { symbol: sym, base: self.base });
        }
        if self.syms.last() == Some(&sym) {
            return Err(KautzError::AdjacentRepeat { index: self.syms.len() - 1 });
        }
        self.syms.push(sym);
        Ok(())
    }

    /// Returns a copy with `sym` appended.
    ///
    /// # Errors
    ///
    /// Same conditions as [`KautzStr::push`].
    pub fn child(&self, sym: u8) -> Result<Self, KautzError> {
        let mut out = self.clone();
        out.push(sym)?;
        Ok(out)
    }

    /// The symbols that may legally follow this string, in increasing order.
    ///
    /// For the empty string this is the whole alphabet (the partition-tree
    /// root has `d+1` children); otherwise every symbol except the last one
    /// (each internal node has `d` children).
    pub fn child_symbols(&self) -> impl Iterator<Item = u8> + '_ {
        let last = self.last();
        (0..=self.base).filter(move |&s| Some(s) != last)
    }

    /// Concatenates two Kautz strings.
    ///
    /// # Errors
    ///
    /// Returns an error on base mismatch or if the junction repeats a symbol.
    pub fn concat(&self, other: &KautzStr) -> Result<Self, KautzError> {
        if self.base != other.base {
            return Err(KautzError::BaseMismatch { left: self.base, right: other.base });
        }
        if let (Some(a), Some(b)) = (self.last(), other.first()) {
            if a == b {
                return Err(KautzError::AdjacentRepeat { index: self.len() - 1 });
            }
        }
        let mut syms = self.syms.clone();
        syms.extend_from_slice(&other.syms);
        Ok(KautzStr { base: self.base, syms })
    }

    /// The substring dropping the first `n` symbols (the "left shift" used by
    /// Kautz-graph edges). Dropping more symbols than exist yields the empty
    /// string.
    pub fn drop_front(&self, n: usize) -> Self {
        KautzStr { base: self.base, syms: self.syms.get(n..).unwrap_or(&[]).to_vec() }
    }

    /// Buffer-reusing twin of [`drop_front`](Self::drop_front): overwrites
    /// `self` with `src` minus its first `n` symbols, keeping `self`'s
    /// allocation. Hot paths that shift a PeerID once per delivery use this
    /// to stay allocation-free after warmup.
    pub fn assign_drop_front(&mut self, src: &KautzStr, n: usize) {
        self.base = src.base;
        self.syms.clear();
        self.syms.extend_from_slice(src.syms.get(n..).unwrap_or(&[]));
    }

    /// Buffer-reusing prepend: overwrites `self` with `sym ++ src`, keeping
    /// `self`'s allocation. The caller guarantees `src` does not start with
    /// `sym` (debug-asserted), so the result is a valid Kautz string.
    pub fn assign_prepend(&mut self, sym: u8, src: &KautzStr) {
        debug_assert!(sym <= src.base, "symbol out of range");
        debug_assert!(src.first() != Some(sym), "junction repeat");
        self.base = src.base;
        self.syms.clear();
        self.syms.push(sym);
        self.syms.extend_from_slice(&src.syms);
    }

    /// Buffer-reusing twin of [`concat`](Self::concat): overwrites `self`
    /// with `head ++ tail` (a raw symbol slice), keeping `self`'s
    /// allocation. Returns `false` — leaving `self` as `head` alone — when
    /// the junction repeats a symbol, i.e. exactly when `concat` errs.
    /// `tail` must itself be repeat-free (callers pass suffixes of valid
    /// Kautz strings).
    pub fn assign_concat(&mut self, head: &KautzStr, tail: &[u8]) -> bool {
        self.base = head.base;
        self.syms.clear();
        self.syms.extend_from_slice(&head.syms);
        if let (Some(&a), Some(&b)) = (self.syms.last(), tail.first()) {
            if a == b {
                return false;
            }
        }
        self.syms.extend_from_slice(tail);
        true
    }

    /// The prefix keeping only the first `n` symbols (saturating).
    pub fn take_front(&self, n: usize) -> Self {
        KautzStr { base: self.base, syms: self.syms[..n.min(self.syms.len())].to_vec() }
    }

    /// Whether `self` is a (possibly equal) prefix of `other`.
    pub fn is_prefix_of(&self, other: &KautzStr) -> bool {
        self.base == other.base && other.syms.starts_with(&self.syms)
    }

    /// Whether one of the two strings is a prefix of the other.
    ///
    /// This is the compatibility relation that decides whether two peers'
    /// regions in FISSIONE overlap.
    pub fn prefix_compatible(&self, other: &KautzStr) -> bool {
        self.is_prefix_of(other) || other.is_prefix_of(self)
    }

    /// Length of the longest common prefix of two strings.
    pub fn common_prefix_len(&self, other: &KautzStr) -> usize {
        self.syms.iter().zip(other.syms.iter()).take_while(|(a, b)| a == b).count()
    }

    /// The longest common prefix of two strings.
    pub fn common_prefix(&self, other: &KautzStr) -> KautzStr {
        self.take_front(self.common_prefix_len(other))
    }

    /// Length of the longest suffix of `self` that is a prefix of `target`.
    ///
    /// This drives Kautz long-path routing: the remaining symbols of
    /// `target` are shifted in one hop at a time.
    pub fn longest_suffix_prefix(&self, target: &KautzStr) -> usize {
        let max = self.len().min(target.len());
        for j in (1..=max).rev() {
            if self.syms[self.len() - j..] == target.syms[..j] {
                return j;
            }
        }
        0
    }

    /// The lexicographically smallest length-`k` Kautz string having `self`
    /// as a prefix.
    ///
    /// The minimal continuation appends `0` after a non-zero symbol and `1`
    /// after `0` (e.g. `"02" → "02010…"`).
    ///
    /// # Panics
    ///
    /// Panics if `self.len() > k`.
    pub fn min_extension(&self, k: usize) -> KautzStr {
        assert!(self.len() <= k, "prefix longer than requested extension");
        let mut syms = self.syms.clone();
        while syms.len() < k {
            let next = match syms.last() {
                Some(0) => 1,
                _ => 0,
            };
            syms.push(next);
        }
        KautzStr { base: self.base, syms }
    }

    /// The lexicographically largest length-`k` Kautz string having `self` as
    /// a prefix.
    ///
    /// The maximal continuation appends `d` after a non-`d` symbol and `d-1`
    /// after `d` (e.g. for `d = 2`: `"01" → "01212…"`).
    ///
    /// # Panics
    ///
    /// Panics if `self.len() > k`.
    pub fn max_extension(&self, k: usize) -> KautzStr {
        assert!(self.len() <= k, "prefix longer than requested extension");
        let mut syms = self.syms.clone();
        while syms.len() < k {
            let next = match syms.last() {
                Some(s) if *s == self.base => self.base - 1,
                _ => self.base,
            };
            syms.push(next);
        }
        KautzStr { base: self.base, syms }
    }

    /// Compares the first `other.len()` symbols of `self` — extended
    /// minimally when `self` is shorter — against `other`, without
    /// materializing the extension. Equivalent to
    /// `self.min_extension(k).cmp(other)` for `self.len() ≤ k` and to
    /// `self.take_front(k).cmp(other)` otherwise (`k = other.len()`);
    /// equal symbols fall through to the base tiebreak like [`Ord`].
    ///
    /// This is the hot-path form of the "does this peer's region start
    /// above `high`" test in range scans, which must not allocate per
    /// candidate.
    pub fn cmp_min_extension(&self, other: &KautzStr) -> std::cmp::Ordering {
        let mut prev = None;
        for (i, &o) in other.syms.iter().enumerate() {
            let sym = if i < self.syms.len() {
                self.syms[i]
            } else {
                match prev {
                    Some(0) => 1,
                    _ => 0,
                }
            };
            match sym.cmp(&o) {
                std::cmp::Ordering::Equal => {}
                ord => return ord,
            }
            prev = Some(sym);
        }
        self.base.cmp(&other.base)
    }

    /// Number of Kautz strings of the given base and length:
    /// `(d+1)·d^(n-1)` for `n ≥ 1`, and 1 for `n = 0`.
    ///
    /// # Panics
    ///
    /// Panics on `u128` overflow (lengths beyond ~125 for base 2).
    pub fn count(base: u8, len: usize) -> u128 {
        if len == 0 {
            return 1;
        }
        let d = base as u128;
        let mut c = d + 1;
        for _ in 1..len {
            c = c.checked_mul(d).expect("Kautz space size overflows u128");
        }
        c
    }

    /// The rank of this string in the lexicographic enumeration of all Kautz
    /// strings of the same base and length (`0`-based).
    ///
    /// Together with [`KautzStr::unrank`] this forms a bijection used for
    /// uniform sampling and region sizing.
    pub fn rank(&self) -> u128 {
        let d = self.base as u128;
        let n = self.len();
        if n == 0 {
            return 0;
        }
        // Strings per subtree below position i (positions after i are free).
        let mut weight = 1u128; // d^(n-1-i) built from the right
        let mut weights = vec![1u128; n];
        for i in (0..n - 1).rev() {
            weight = weight.checked_mul(d).expect("rank overflow");
            weights[i] = weight;
        }
        let mut rank = 0u128;
        let mut prev: Option<u8> = None;
        for (i, &s) in self.syms.iter().enumerate() {
            let idx = match prev {
                None => s as u128,
                Some(p) => {
                    // Index of s among allowed symbols {0..=d} \ {p}.
                    (s as u128) - if s > p { 1 } else { 0 }
                }
            };
            rank += idx * weights[i];
            prev = Some(s);
        }
        rank
    }

    /// The inverse of [`KautzStr::rank`].
    ///
    /// # Errors
    ///
    /// Returns [`KautzError::RankOutOfRange`] if `rank` is not below
    /// [`KautzStr::count`]`(base, len)`.
    pub fn unrank(base: u8, len: usize, rank: u128) -> Result<Self, KautzError> {
        let count = KautzStr::count(base, len);
        if rank >= count {
            return Err(KautzError::RankOutOfRange { rank, count });
        }
        if len == 0 {
            return Ok(KautzStr::empty(base));
        }
        let d = base as u128;
        let mut weights = vec![1u128; len];
        for i in (0..len - 1).rev() {
            weights[i] = weights[i + 1] * d;
        }
        let mut rest = rank;
        let mut syms = Vec::with_capacity(len);
        let mut prev: Option<u8> = None;
        for w in weights {
            let idx = (rest / w) as u8;
            rest %= w;
            let sym = match prev {
                None => idx,
                Some(p) => idx + u8::from(idx >= p),
            };
            syms.push(sym);
            prev = Some(sym);
        }
        Ok(KautzStr { base, syms })
    }

    /// Draws a uniformly random Kautz string of the given base and length.
    pub fn random<R: Rng + ?Sized>(base: u8, len: usize, rng: &mut R) -> Self {
        let count = KautzStr::count(base, len);
        let rank = rng.gen_range(0..count);
        KautzStr::unrank(base, len, rank).expect("sampled rank is in range")
    }

    /// The next string in lexicographic order among equal-length Kautz
    /// strings, or `None` if `self` is the maximum.
    pub fn successor(&self) -> Option<Self> {
        let count = KautzStr::count(self.base, self.len());
        let r = self.rank() + 1;
        if r >= count {
            None
        } else {
            Some(KautzStr::unrank(self.base, self.len(), r).expect("in range"))
        }
    }
}

impl PartialOrd for KautzStr {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for KautzStr {
    fn cmp(&self, other: &Self) -> Ordering {
        self.syms.cmp(&other.syms).then_with(|| self.base.cmp(&other.base))
    }
}

impl fmt::Display for KautzStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.syms.is_empty() {
            return write!(f, "ε");
        }
        for s in &self.syms {
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for KautzStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "K(d={})\"", self.base)?;
        if self.syms.is_empty() {
            write!(f, "ε")?;
        }
        for s in &self.syms {
            write!(f, "{s}")?;
        }
        write!(f, "\"")
    }
}

/// Errors from parsing a [`KautzStr`] out of text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseKautzStrError {
    /// A character was not a decimal digit.
    NotADigit(char),
    /// The digits did not form a valid Kautz string.
    Invalid(KautzError),
}

impl fmt::Display for ParseKautzStrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseKautzStrError::NotADigit(c) => write!(f, "character {c:?} is not a digit"),
            ParseKautzStrError::Invalid(e) => write!(f, "invalid Kautz string: {e}"),
        }
    }
}

impl std::error::Error for ParseKautzStrError {}

impl FromStr for KautzStr {
    type Err = ParseKautzStrError;

    /// Parses a base-2 (alphabet `{0,1,2}`) Kautz string, the base used
    /// throughout the paper. Use [`KautzStr::parse_with_base`] for other
    /// bases.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        KautzStr::parse_with_base(DEFAULT_BASE, s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn ks(s: &str) -> KautzStr {
        s.parse().unwrap()
    }

    #[test]
    fn rejects_adjacent_repeats() {
        assert_eq!(KautzStr::new(2, vec![0, 0]), Err(KautzError::AdjacentRepeat { index: 0 }));
        assert_eq!(KautzStr::new(2, vec![0, 1, 1]), Err(KautzError::AdjacentRepeat { index: 1 }));
    }

    #[test]
    fn rejects_out_of_range_symbols() {
        assert_eq!(
            KautzStr::new(2, vec![3]),
            Err(KautzError::SymbolOutOfRange { symbol: 3, base: 2 })
        );
    }

    #[test]
    fn empty_string_is_valid_and_prefix_of_all() {
        let e = KautzStr::empty(2);
        assert!(e.is_empty());
        assert!(e.is_prefix_of(&ks("0120")));
        assert_eq!(e.to_string(), "ε");
    }

    #[test]
    fn lexicographic_order_matches_paper_example() {
        // Kautz region ⟨010, 021⟩ = {010, 012, 020, 021} (Definition 1).
        assert!(ks("010") < ks("012"));
        assert!(ks("012") < ks("020"));
        assert!(ks("020") < ks("021"));
    }

    #[test]
    fn prefix_sorts_before_extension() {
        assert!(ks("01") < ks("010"));
        assert!(ks("01").is_prefix_of(&ks("010")));
    }

    #[test]
    fn child_symbols_exclude_last() {
        let s = ks("01");
        assert_eq!(s.child_symbols().collect::<Vec<_>>(), vec![0, 2]);
        let root = KautzStr::empty(2);
        assert_eq!(root.child_symbols().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn concat_validates_junction() {
        assert!(ks("01").concat(&ks("12")).is_err());
        assert_eq!(ks("01").concat(&ks("21")).unwrap(), ks("0121"));
    }

    #[test]
    fn drop_and_take_front() {
        assert_eq!(ks("0120").drop_front(1), ks("120"));
        assert_eq!(ks("0120").drop_front(9), KautzStr::empty(2));
        assert_eq!(ks("0120").take_front(2), ks("01"));
    }

    #[test]
    fn longest_suffix_prefix_examples() {
        // Suffix "12" of 212 is a prefix of 120…
        assert_eq!(ks("212").longest_suffix_prefix(&ks("1202")), 2);
        assert_eq!(ks("212").longest_suffix_prefix(&ks("2120")), 3);
        assert_eq!(ks("212").longest_suffix_prefix(&ks("0102")), 0);
    }

    #[test]
    fn min_max_extensions() {
        assert_eq!(ks("02").min_extension(5), ks("02010"));
        assert_eq!(ks("01").max_extension(5), ks("01212"));
        // From the empty prefix: global min/max of the length-k space.
        assert_eq!(KautzStr::empty(2).min_extension(4), ks("0101"));
        assert_eq!(KautzStr::empty(2).max_extension(4), ks("2121"));
    }

    #[test]
    fn cmp_min_extension_matches_materialized_compare() {
        // Against every pair drawn from the length-≤5 space: the streamed
        // compare must reproduce min_extension/take_front + Ord exactly.
        let mut strings = vec![KautzStr::empty(2)];
        for len in 1..=5 {
            let count = KautzStr::count(2, len);
            strings.extend((0..count).map(|r| KautzStr::unrank(2, len, r).unwrap()));
        }
        for a in &strings {
            for b in strings.iter().filter(|b| !b.is_empty()) {
                let k = b.len();
                let expect = if a.len() <= k {
                    a.min_extension(k).cmp(b)
                } else {
                    a.take_front(k).cmp(b)
                };
                assert_eq!(a.cmp_min_extension(b), expect, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn assign_helpers_reuse_buffers_and_match_allocating_twins() {
        let src = ks("01210");
        let mut buf = KautzStr::empty(2);
        buf.assign_drop_front(&src, 2);
        assert_eq!(buf, src.drop_front(2));
        buf.assign_drop_front(&src, 9); // over-drop → empty
        assert_eq!(buf, KautzStr::empty(2));
        buf.assign_prepend(2, &src);
        assert_eq!(buf, ks("201210"));
        // assign_concat mirrors concat, falling back to the head on a
        // repeated junction.
        assert!(buf.assign_concat(&ks("012"), ks("01").symbols()));
        assert_eq!(buf, ks("01201"));
        assert!(!buf.assign_concat(&ks("012"), ks("20").symbols()));
        assert_eq!(buf, ks("012"), "failed concat leaves the head alone");
        assert!(buf.assign_concat(&ks("012"), &[]));
        assert_eq!(buf, ks("012"));
    }

    #[test]
    fn count_matches_formula() {
        assert_eq!(KautzStr::count(2, 1), 3);
        assert_eq!(KautzStr::count(2, 3), 12); // K(2,3) has 12 nodes (Fig. 1)
        assert_eq!(KautzStr::count(2, 4), 24); // P(2,4) has 24 leaves (Fig. 3)
        assert_eq!(KautzStr::count(3, 2), 12);
    }

    #[test]
    fn rank_is_lexicographic_and_bijective() {
        let n = 5;
        let count = KautzStr::count(2, n) as usize;
        let mut all: Vec<KautzStr> =
            (0..count).map(|r| KautzStr::unrank(2, n, r as u128).unwrap()).collect();
        // unrank is increasing in rank ⇒ sorted.
        let mut sorted = all.clone();
        sorted.sort();
        assert_eq!(all, sorted);
        // rank inverts unrank.
        for (r, s) in all.drain(..).enumerate() {
            assert_eq!(s.rank(), r as u128);
        }
    }

    #[test]
    fn unrank_rejects_out_of_range() {
        assert!(matches!(KautzStr::unrank(2, 3, 12), Err(KautzError::RankOutOfRange { .. })));
    }

    #[test]
    fn successor_walks_the_space() {
        let mut s = KautzStr::empty(2).min_extension(3);
        let mut seen = 1;
        while let Some(next) = s.successor() {
            assert!(s < next);
            s = next;
            seen += 1;
        }
        assert_eq!(seen, 12);
        assert_eq!(s, KautzStr::empty(2).max_extension(3));
    }

    #[test]
    fn random_strings_are_valid_and_long_strings_work() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..50 {
            let s = KautzStr::random(2, 100, &mut rng);
            assert_eq!(s.len(), 100);
            // Validity enforced by construction; re-validate explicitly.
            assert!(KautzStr::new(2, s.symbols().to_vec()).is_ok());
        }
    }

    #[test]
    fn rank_handles_k_100() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..20 {
            let s = KautzStr::random(2, 100, &mut rng);
            let r = s.rank();
            assert_eq!(KautzStr::unrank(2, 100, r).unwrap(), s);
        }
    }
}
