//! The partition tree `P(2,k)` (paper §4.1, Figure 3) and its descent
//! arithmetic.
//!
//! The tree's root has three children (edge labels `0,1,2`); every other node
//! has two children whose edge labels differ from the node's incoming edge,
//! increasing left to right. Leaf labels at depth `k` enumerate
//! `KautzSpace(2,k)` in lexicographic order, so the tree is simultaneously
//!
//! * an interval partition of an attribute space (single-attribute naming,
//!   `Single_hash`),
//! * a round-robin hyper-rectangle partition of a multi-attribute space
//!   (`Multiple_hash`, §5), and
//! * the split structure of FISSIONE peer IDs (a peer's region is the
//!   subtree under its ID).
//!
//! All descent arithmetic is exact (`u128` fixed point, see [`crate::fixed`]),
//! valid to depth [`MAX_DEPTH`].

use crate::fixed::{Boundary, BoundaryInterval, ScaledValue, BOUNDARY_DEN, SCALE};
use crate::{KautzError, KautzStr};

/// Maximum supported partition-tree depth (limited by exact `u128`
/// boundary arithmetic; the paper uses `k = 100`).
pub const MAX_DEPTH: usize = 120;

/// Depth of the precomputed leaf-symbol table: the top `TABLE_DEPTH` levels
/// of the single-attribute descent collapse into one multiply and a table
/// row copy. Limited by exact arithmetic: the jump computes `3p` in `u128`
/// (`p ≤ 2^120`), and the residual shift needs `TABLE_DEPTH − 1 + 120 ≤ 127`.
const TABLE_DEPTH: usize = 7;

/// Leaves at `TABLE_DEPTH`: `3 · 2^(TABLE_DEPTH−1)`.
const TABLE_LEAVES: usize = 3 << (TABLE_DEPTH - 1);

/// The `idx`-th legal child symbol after `last` (alphabet `{0,1,2}` minus
/// `last`, increasing) — the arithmetic form of
/// [`KautzStr::child_symbols`]`().nth(idx)` for base 2.
const fn child2(last: u8, idx: u8) -> u8 {
    match (last, idx) {
        (0, 0) => 1,
        (0, _) => 2,
        (1, 0) => 0,
        (1, _) => 2,
        (2, 0) => 0,
        _ => 1,
    }
}

/// Builds the depth-[`TABLE_DEPTH`] leaf table: row `j` holds the symbols
/// of the `j`-th leaf in lexicographic order (root digit `j / 2^(D−1)`,
/// then the binary digits of `j` high to low, each mapped through
/// [`child2`]).
const fn build_leaf_table() -> [[u8; TABLE_DEPTH]; TABLE_LEAVES] {
    let mut table = [[0u8; TABLE_DEPTH]; TABLE_LEAVES];
    let mut j = 0;
    while j < TABLE_LEAVES {
        let mut last = (j >> (TABLE_DEPTH - 1)) as u8;
        table[j][0] = last;
        let mut lvl = 1;
        while lvl < TABLE_DEPTH {
            let bit = ((j >> (TABLE_DEPTH - 1 - lvl)) & 1) as u8;
            let sym = child2(last, bit);
            table[j][lvl] = sym;
            last = sym;
            lvl += 1;
        }
        j += 1;
    }
    table
}

/// Flat leaf-symbol table for the top [`TABLE_DEPTH`] levels (4.3 KiB,
/// computed at compile time).
static LEAF_TABLE: [[u8; TABLE_DEPTH]; TABLE_LEAVES] = build_leaf_table();

/// One exact ternary split step: which of the root's three equal pieces
/// contains relative position `p ∈ [0, SCALE]`, and `p` rescaled within it.
fn step3(p: u128) -> (usize, u128) {
    let t = 3 * p;
    let i = (t >> crate::fixed::SCALE_BITS).min(2) as usize;
    (i, t - (i as u128) * SCALE)
}

/// One exact binary split step.
fn step2(p: u128) -> (usize, u128) {
    let t = 2 * p;
    let i = (t >> crate::fixed::SCALE_BITS).min(1) as usize;
    (i, t - (i as u128) * SCALE)
}

/// `Single_hash` on a pre-normalised value: the label of the depth-`k` leaf
/// whose subinterval contains `x`.
///
/// Boundaries between siblings belong to the right sibling (intervals are
/// half-open `[lo, hi)`), except the top of the space which belongs to the
/// last leaf.
///
/// # Panics
///
/// Panics if `k == 0` or `k > `[`MAX_DEPTH`].
pub fn single_hash_scaled(x: ScaledValue, k: usize) -> KautzStr {
    assert!(k > 0 && k <= MAX_DEPTH, "depth {k} out of range");
    let mut syms = Vec::with_capacity(k);
    let mut p = x.raw();
    let mut last;
    if k >= TABLE_DEPTH {
        // Table jump over the top TABLE_DEPTH levels. With M = TABLE_LEAVES
        // the composed descent computes leaf j = ⌊M·p / SCALE⌋ (clamped to
        // M−1 at p = SCALE) and residual M·p − j·SCALE; since M = 3·2^(D−1),
        // j = ⌊3p / 2^(121−D)⌋ and the residual is (3p − j·2^(121−D))·2^(D−1),
        // both overflow-free in u128 — identical to D sequential step calls.
        let t = 3 * p;
        let shift = crate::fixed::SCALE_BITS + 1 - TABLE_DEPTH as u32;
        let j = ((t >> shift) as usize).min(TABLE_LEAVES - 1);
        p = (t - ((j as u128) << shift)) << (TABLE_DEPTH - 1);
        let row = &LEAF_TABLE[j];
        syms.extend_from_slice(row);
        last = row[TABLE_DEPTH - 1];
    } else {
        let (idx, rest) = step3(p);
        p = rest;
        last = idx as u8; // root children are the symbols 0, 1, 2 in order
        syms.push(last);
    }
    for _ in syms.len()..k {
        let (idx, rest) = step2(p);
        p = rest;
        last = child2(last, idx as u8);
        syms.push(last);
    }
    KautzStr::new(2, syms).expect("descent emits legal child symbols")
}

/// `Multiple_hash` (§5) on pre-normalised per-attribute values: descends the
/// partition tree splitting attribute `j mod m` at level `j` (ternary at the
/// root, binary elsewhere).
///
/// With `m = 1` this coincides with [`single_hash_scaled`].
///
/// # Panics
///
/// Panics if `values` is empty, `k == 0`, or `k > `[`MAX_DEPTH`].
pub fn multiple_hash_scaled(values: &[ScaledValue], k: usize) -> KautzStr {
    assert!(!values.is_empty(), "at least one attribute required");
    assert!(k > 0 && k <= MAX_DEPTH, "depth {k} out of range");
    let m = values.len();
    let mut state: Vec<u128> = values.iter().map(|v| v.raw()).collect();
    let mut label = KautzStr::empty(2);
    for level in 0..k {
        let dim = level % m;
        let (idx, rest) = if level == 0 { step3(state[dim]) } else { step2(state[dim]) };
        state[dim] = rest;
        let sym = label.child_symbols().nth(idx).expect("split index below child count");
        label.push(sym).expect("child symbol is legal");
    }
    label
}

/// The exact hyper-rectangle of the partition-tree node labelled `prefix`,
/// for an `m`-attribute space (per-dimension half-open boundary intervals).
///
/// With `m = 1` the single entry is the node's attribute subinterval.
///
/// # Errors
///
/// Returns [`KautzError::UnsupportedLength`] if the prefix is deeper than
/// [`MAX_DEPTH`].
///
/// # Panics
///
/// Panics if `m == 0`.
pub fn rect_of_prefix(prefix: &KautzStr, m: usize) -> Result<Vec<BoundaryInterval>, KautzError> {
    let mut out = Vec::with_capacity(m);
    rect_of_prefix_into(prefix, m, &mut out)?;
    Ok(out)
}

/// [`rect_of_prefix`] into a caller-owned buffer (cleared first) — the
/// allocation-free form query hot paths call per hop.
///
/// One dimension at a time with scalar accumulators, so no per-call
/// temporaries: the split index of `sym` at a level is its position among
/// the legal child symbols there, which is `sym` at the root (all of
/// `0..=base` are legal) and `sym` minus one when `sym` sorts after the
/// preceding symbol (every symbol but the predecessor is legal).
///
/// # Errors
///
/// Same conditions as [`rect_of_prefix`].
///
/// # Panics
///
/// Panics if `m == 0`.
pub fn rect_of_prefix_into(
    prefix: &KautzStr,
    m: usize,
    out: &mut Vec<BoundaryInterval>,
) -> Result<(), KautzError> {
    assert!(m > 0, "at least one attribute required");
    if prefix.len() > MAX_DEPTH {
        return Err(KautzError::UnsupportedLength { len: prefix.len() });
    }
    let syms = prefix.symbols();
    out.clear();
    for d in 0..m {
        let mut lo: u128 = 0;
        let mut width: u128 = BOUNDARY_DEN;
        let mut level = d;
        while level < syms.len() {
            let sym = syms[level];
            let (idx, pieces) = if level == 0 {
                (sym as usize, 3u128)
            } else {
                (sym as usize - usize::from(sym > syms[level - 1]), 2u128)
            };
            let w = width / pieces;
            debug_assert_eq!(w * pieces, width, "exact division invariant");
            lo += idx as u128 * w;
            width = w;
            level += m;
        }
        out.push(BoundaryInterval {
            lo: Boundary::from_num(lo),
            hi: Boundary::from_num(lo).add(width),
        });
    }
    Ok(())
}

/// The exact attribute subinterval of the node labelled `prefix` in the
/// single-attribute tree (`m = 1` rectangle).
///
/// # Errors
///
/// Same conditions as [`rect_of_prefix`].
pub fn interval_of_prefix(prefix: &KautzStr) -> Result<BoundaryInterval, KautzError> {
    Ok(rect_of_prefix(prefix, 1)?[0])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ks(s: &str) -> KautzStr {
        s.parse().unwrap()
    }

    fn hash_unit(x: f64, k: usize) -> KautzStr {
        single_hash_scaled(ScaledValue::from_unit(x), k)
    }

    #[test]
    fn paper_figure_3_examples() {
        // Node U with label 0101 represents [0, 1/2^4 · …]: the paper says
        // value 0.1 lies in leaf P = 0120 and [0.1, 0.24] spans ⟨0120, 0202⟩.
        assert_eq!(hash_unit(0.1, 4), ks("0120"));
        assert_eq!(hash_unit(0.24, 4), ks("0202"));
    }

    #[test]
    fn leftmost_and_rightmost_leaves() {
        assert_eq!(hash_unit(0.0, 4), ks("0101"));
        assert_eq!(hash_unit(1.0, 4), ks("2121"));
    }

    #[test]
    fn leaf_order_matches_value_order() {
        let k = 5;
        let mut prev = hash_unit(0.0, k);
        for i in 1..=1000 {
            let cur = hash_unit(i as f64 / 1000.0, k);
            assert!(cur >= prev, "monotone naming at step {i}");
            prev = cur;
        }
    }

    #[test]
    fn every_leaf_is_hit_surjective() {
        // k = 4: 24 leaves; sample finely and expect all leaves covered.
        let k = 4;
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..=4800 {
            seen.insert(hash_unit(i as f64 / 4800.0, k));
        }
        assert_eq!(seen.len(), 24);
    }

    #[test]
    fn interval_of_prefix_contains_its_values() {
        let k = 6;
        for i in 0..=500 {
            let x = ScaledValue::from_unit(i as f64 / 500.0);
            let leaf = single_hash_scaled(x, k);
            // Every ancestor's interval contains x.
            for depth in 1..=k {
                let node = leaf.take_front(depth);
                let iv = interval_of_prefix(&node).unwrap();
                assert!(iv.contains_value(x), "x index {i}, depth {depth}");
            }
        }
    }

    #[test]
    fn sibling_intervals_tile_the_parent() {
        // The three root children tile [0,1]; deeper siblings tile parents.
        let roots = ["0", "1", "2"];
        let mut cursor = Boundary::ZERO;
        for r in roots {
            let iv = interval_of_prefix(&ks(r)).unwrap();
            assert_eq!(iv.lo, cursor);
            cursor = iv.hi;
        }
        assert_eq!(cursor, Boundary::ONE);

        let children = ["010", "012"]; // children of 01
        let parent = interval_of_prefix(&ks("01")).unwrap();
        let mut cursor = parent.lo;
        for c in children {
            let iv = interval_of_prefix(&ks(c)).unwrap();
            assert_eq!(iv.lo, cursor);
            cursor = iv.hi;
        }
        assert_eq!(cursor, parent.hi);
    }

    #[test]
    fn depth_100_is_exact_and_consistent() {
        let k = 100;
        let xs = [0.0, 1e-12, 0.1, 1.0 / 3.0, 0.5, 0.9999999, 1.0];
        for &x in &xs {
            let v = ScaledValue::from_unit(x);
            let leaf = single_hash_scaled(v, k);
            assert_eq!(leaf.len(), k);
            let iv = interval_of_prefix(&leaf).unwrap();
            assert!(iv.contains_value(v), "x = {x}");
        }
    }

    #[test]
    fn multiple_hash_round_robin_dims() {
        // Two attributes: level 0 splits dim 0 in thirds, level 1 splits
        // dim 1 in halves, level 2 splits dim 0 again, …
        let v = |a: f64, b: f64| vec![ScaledValue::from_unit(a), ScaledValue::from_unit(b)];
        // dim0 = 0.9 → root child 2; dim1 = 0.1 → first half.
        let id = multiple_hash_scaled(&v(0.9, 0.1), 2);
        assert_eq!(id.symbols()[0], 2);
        // Level 1: children of "2" are {0, 1}; 0.1 in the first half → 0.
        assert_eq!(id.symbols()[1], 0);
    }

    #[test]
    fn multiple_hash_is_partial_order_preserving() {
        // Definition 4: componentwise ≤ implies lexicographic ≤.
        let pts = [(0.1, 0.2), (0.1, 0.9), (0.4, 0.2), (0.4, 0.9), (0.9, 0.95)];
        let f = |(a, b): (f64, f64)| {
            multiple_hash_scaled(&[ScaledValue::from_unit(a), ScaledValue::from_unit(b)], 8)
        };
        for &p in &pts {
            for &q in &pts {
                if p.0 <= q.0 && p.1 <= q.1 {
                    assert!(f(p) <= f(q), "{p:?} vs {q:?}");
                }
            }
        }
    }

    #[test]
    fn rect_of_prefix_contains_hashed_point() {
        let m = 3;
        let k = 12;
        let vals = [0.13, 0.57, 0.86];
        let scaled: Vec<ScaledValue> = vals.iter().map(|&x| ScaledValue::from_unit(x)).collect();
        let leaf = multiple_hash_scaled(&scaled, k);
        for depth in 1..=k {
            let rect = rect_of_prefix(&leaf.take_front(depth), m).unwrap();
            for (d, iv) in rect.iter().enumerate() {
                assert!(iv.contains_value(scaled[d]), "depth {depth} dim {d}");
            }
        }
    }

    #[test]
    fn rect_into_matches_the_child_symbols_walk() {
        // The into-variant's arithmetic split index must reproduce the
        // context-tracking child_symbols() walk on every valid prefix.
        fn rect_via_walk(prefix: &KautzStr, m: usize) -> Vec<BoundaryInterval> {
            let mut lo = vec![0u128; m];
            let mut width = vec![BOUNDARY_DEN; m];
            let mut context = KautzStr::empty(2);
            for (level, &sym) in prefix.symbols().iter().enumerate() {
                let dim = level % m;
                let idx = context.child_symbols().position(|s| s == sym).unwrap();
                let pieces = if level == 0 { 3 } else { 2 };
                let w = width[dim] / pieces;
                lo[dim] += idx as u128 * w;
                width[dim] = w;
                context.push(sym).unwrap();
            }
            (0..m)
                .map(|d| BoundaryInterval {
                    lo: Boundary::from_num(lo[d]),
                    hi: Boundary::from_num(lo[d]).add(width[d]),
                })
                .collect()
        }
        let mut frontier = vec![KautzStr::empty(2)];
        for _ in 0..=6 {
            let mut next = Vec::new();
            for p in &frontier {
                for m in 1..=3 {
                    assert_eq!(rect_of_prefix(p, m).unwrap(), rect_via_walk(p, m), "{p:?} m={m}");
                }
                for sym in p.child_symbols() {
                    let mut c = p.clone();
                    c.push(sym).unwrap();
                    next.push(c);
                }
            }
            frontier = next;
        }
    }

    #[test]
    fn rect_of_prefix_rejects_excessive_depth() {
        let mut syms = Vec::new();
        for i in 0..130 {
            syms.push(if i % 2 == 0 { 0 } else { 1 });
        }
        let long = KautzStr::new(2, syms).unwrap();
        assert!(matches!(rect_of_prefix(&long, 1), Err(KautzError::UnsupportedLength { .. })));
    }

    #[test]
    fn table_jump_matches_sequential_descent_exactly() {
        // The flat-table fast path must agree symbol-for-symbol with the
        // general sequential descent (multiple_hash_scaled with m = 1) at
        // every depth — below, at, and above TABLE_DEPTH — including the
        // clamped endpoints and values straddling split boundaries.
        let depths = [1, 3, TABLE_DEPTH - 1, TABLE_DEPTH, TABLE_DEPTH + 1, 20, 100, MAX_DEPTH];
        let mut values: Vec<u128> = vec![0, 1, SCALE - 1, SCALE];
        // Dyadic and ternary split boundaries and their neighbours.
        for d in 1..=10u32 {
            for n in 0..(1u128 << d) {
                let b = n * (SCALE >> d);
                values.extend([b.saturating_sub(1), b, b + 1]);
            }
        }
        // A deterministic pseudo-random sweep of the interior.
        let mut s: u128 = 0x9e37_79b9_7f4a_7c15;
        for _ in 0..500 {
            s = s.wrapping_mul(0x2545_f491_4f6c_dd1d).wrapping_add(0x6361_1c88);
            values.push(s % (SCALE + 1));
        }
        for &raw in &values {
            let x = ScaledValue::from_raw_clamped(raw);
            for &k in &depths {
                assert_eq!(
                    single_hash_scaled(x, k),
                    multiple_hash_scaled(&[x], k),
                    "raw {raw} depth {k}"
                );
            }
        }
    }

    #[test]
    fn boundary_value_goes_to_right_sibling() {
        // Exactly 1/3 is the left edge of root child 1: for values exactly
        // on a boundary the descent picks the right-hand child.
        let third = {
            // Construct exactly 1/3 in scaled units via boundary arithmetic:
            // SCALE/3 is not an integer, so use a value slightly above and
            // check sidedness near the boundary instead.
            ScaledValue::from_unit(1.0 / 3.0)
        };
        let leaf = single_hash_scaled(third, 1);
        let iv0 = interval_of_prefix(&ks("0")).unwrap();
        let iv1 = interval_of_prefix(&ks("1")).unwrap();
        assert!(iv0.contains_value(third) ^ iv1.contains_value(third));
        let expected = if iv0.contains_value(third) { ks("0") } else { ks("1") };
        assert_eq!(leaf, expected);
    }
}
