//! The static Kautz graph `K(d,k)` (paper §3, Figure 1).
//!
//! FISSIONE organises peers into an *approximation* of this graph; the exact
//! graph is used here as ground truth for topology properties (degree,
//! diameter, shortest paths) in tests and substrate-validation experiments.

use crate::{KautzError, KautzStr};
use std::collections::VecDeque;

/// The Kautz graph `K(d,k)`: nodes are the Kautz strings of base `d` and
/// length `k`; node `U = u1…uk` has an out-edge to every `V = u2…uk·α` with
/// `α ≠ uk`.
///
/// `K(d,k)` has `(d+1)·d^(k-1)` nodes, uniform in/out degree `d`, and optimal
/// diameter `k` among degree-`d` digraphs of its size.
///
/// # Example
///
/// ```
/// use kautz::KautzGraph;
///
/// let g = KautzGraph::new(2, 3)?;   // the 12-node graph of Figure 1
/// assert_eq!(g.node_count(), 12);
/// assert_eq!(g.diameter(), 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct KautzGraph {
    base: u8,
    len: usize,
}

impl KautzGraph {
    /// Creates `K(d,k)` for `base = d ≥ 1` and `len = k ≥ 1`.
    ///
    /// # Errors
    ///
    /// Returns [`KautzError::UnsupportedLength`] for `k = 0` or sizes whose
    /// rank arithmetic would overflow `u128`.
    pub fn new(base: u8, len: usize) -> Result<Self, KautzError> {
        if len == 0 || len > 120 {
            return Err(KautzError::UnsupportedLength { len });
        }
        Ok(KautzGraph { base, len })
    }

    /// The base `d`.
    pub fn base(&self) -> u8 {
        self.base
    }

    /// The string length `k`.
    pub fn string_len(&self) -> usize {
        self.len
    }

    /// Number of nodes: `(d+1)·d^(k-1)`.
    pub fn node_count(&self) -> u128 {
        KautzStr::count(self.base, self.len)
    }

    /// Iterates over all nodes in lexicographic order.
    ///
    /// Intended for small instances (tests / validation); cost is
    /// `O(node_count · k)`.
    pub fn nodes(&self) -> impl Iterator<Item = KautzStr> + '_ {
        (0..self.node_count())
            .map(move |r| KautzStr::unrank(self.base, self.len, r).expect("rank in range"))
    }

    /// The `d` out-neighbors of `node`: `u2…uk·α` for each `α ≠ uk`.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to this graph (wrong base or length).
    pub fn out_neighbors(&self, node: &KautzStr) -> Vec<KautzStr> {
        assert_eq!(node.base(), self.base, "node base mismatch");
        assert_eq!(node.len(), self.len, "node length mismatch");
        let shifted = node.drop_front(1);
        shifted.child_symbols().map(|s| shifted.child(s).expect("child symbol is legal")).collect()
    }

    /// The `d` in-neighbors of `node`: `α·u1…u(k-1)` for each `α ≠ u1`.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to this graph.
    pub fn in_neighbors(&self, node: &KautzStr) -> Vec<KautzStr> {
        assert_eq!(node.base(), self.base, "node base mismatch");
        assert_eq!(node.len(), self.len, "node length mismatch");
        let head = node.take_front(self.len - 1);
        let first = node.first().expect("k ≥ 1");
        (0..=self.base)
            .filter(|&a| a != first)
            .map(|a| {
                let mut syms = vec![a];
                syms.extend_from_slice(head.symbols());
                KautzStr::new(self.base, syms).expect("in-neighbor is a Kautz string")
            })
            .collect()
    }

    /// BFS hop distances from `from` to every node, indexed by rank.
    ///
    /// # Panics
    ///
    /// Panics if `from` does not belong to the graph, or if the graph is too
    /// large to enumerate (`> 2^22` nodes).
    pub fn bfs_distances(&self, from: &KautzStr) -> Vec<u32> {
        let n = self.node_count();
        assert!(n <= 1 << 22, "graph too large for exhaustive BFS");
        let n = n as usize;
        let mut dist = vec![u32::MAX; n];
        let mut queue = VecDeque::new();
        dist[from.rank() as usize] = 0;
        queue.push_back(from.clone());
        while let Some(u) = queue.pop_front() {
            let du = dist[u.rank() as usize];
            for v in self.out_neighbors(&u) {
                let rv = v.rank() as usize;
                if dist[rv] == u32::MAX {
                    dist[rv] = du + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// The diameter (max over all ordered pairs of BFS distance).
    ///
    /// # Panics
    ///
    /// Panics if the graph is too large to enumerate.
    pub fn diameter(&self) -> u32 {
        self.nodes()
            .map(|u| self.bfs_distances(&u).into_iter().max().expect("graph is non-empty"))
            .max()
            .expect("graph is non-empty")
    }

    /// Average shortest-path length over all ordered pairs of distinct nodes.
    ///
    /// # Panics
    ///
    /// Panics if the graph is too large to enumerate.
    pub fn average_path_length(&self) -> f64 {
        let mut total = 0u64;
        let mut pairs = 0u64;
        for u in self.nodes() {
            for d in self.bfs_distances(&u) {
                if d > 0 {
                    total += u64::from(d);
                    pairs += 1;
                }
            }
        }
        total as f64 / pairs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ks(s: &str) -> KautzStr {
        s.parse().unwrap()
    }

    #[test]
    fn k23_matches_figure_1() {
        let g = KautzGraph::new(2, 3).unwrap();
        assert_eq!(g.node_count(), 12);
        // Figure 1 edges out of 012: to 120 and 121.
        let mut out = g.out_neighbors(&ks("012"));
        out.sort();
        assert_eq!(out, vec![ks("120"), ks("121")]);
    }

    #[test]
    fn in_and_out_neighbors_are_inverse_relations() {
        let g = KautzGraph::new(2, 3).unwrap();
        for u in g.nodes() {
            for v in g.out_neighbors(&u) {
                assert!(g.in_neighbors(&v).contains(&u), "{u} -> {v}");
            }
            for w in g.in_neighbors(&u) {
                assert!(g.out_neighbors(&w).contains(&u), "{w} -> {u}");
            }
        }
    }

    #[test]
    fn degrees_are_uniform_d() {
        for (d, k) in [(2u8, 3usize), (2, 4), (3, 3)] {
            let g = KautzGraph::new(d, k).unwrap();
            for u in g.nodes() {
                assert_eq!(g.out_neighbors(&u).len(), d as usize);
                assert_eq!(g.in_neighbors(&u).len(), d as usize);
            }
        }
    }

    #[test]
    fn diameter_is_k() {
        // Kautz graphs have optimal diameter exactly k.
        for (d, k) in [(2u8, 2usize), (2, 3), (2, 4), (3, 2)] {
            let g = KautzGraph::new(d, k).unwrap();
            assert_eq!(g.diameter(), k as u32, "K({d},{k})");
        }
    }

    #[test]
    fn average_path_is_below_diameter() {
        let g = KautzGraph::new(2, 4).unwrap();
        let avg = g.average_path_length();
        assert!(avg > 1.0 && avg < 4.0, "avg = {avg}");
    }

    #[test]
    fn strongly_connected() {
        let g = KautzGraph::new(2, 4).unwrap();
        for u in g.nodes() {
            assert!(g.bfs_distances(&u).iter().all(|&d| d != u32::MAX));
        }
    }
}
