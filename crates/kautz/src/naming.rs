//! Order-preserving object naming (paper §4.1 and §5).
//!
//! [`SingleHash`] implements `Single_hash`: an **interval-preserving**
//! surjection (Definition 2) from an attribute interval `[L, H]` onto
//! `KautzSpace(2,k)` — objects with close attribute values receive adjoining
//! ObjectIDs, so a value range maps to exactly one [`KautzRegion`].
//!
//! [`MultiHash`] implements `Multiple_hash`: a **partial-order-preserving**
//! surjection (Definitions 3–4) from an `m`-attribute space onto
//! `KautzSpace(2,k)` via round-robin splits. The image of a rectangle query
//! is a *subset* of the corner region `⟨F(mins), F(maxs)⟩`, so queries carry
//! the exact rectangle and prune with [`MultiHash::prefix_rect`].

use crate::fixed::{BoundaryInterval, ScaledValue};
use crate::partition::{
    multiple_hash_scaled, rect_of_prefix, rect_of_prefix_into, single_hash_scaled, MAX_DEPTH,
};
use crate::{KautzError, KautzRegion, KautzStr};

/// Errors from constructing or using a naming scheme.
#[derive(Debug, Clone, PartialEq)]
pub enum NamingError {
    /// The attribute interval is empty or not finite.
    BadInterval {
        /// Lower endpoint supplied.
        lo: f64,
        /// Upper endpoint supplied.
        hi: f64,
    },
    /// The ObjectID length is zero or above [`MAX_DEPTH`].
    BadDepth {
        /// The offending depth.
        k: usize,
    },
    /// A query or point had the wrong number of attributes.
    WrongArity {
        /// Attributes expected by the scheme.
        expected: usize,
        /// Attributes supplied.
        got: usize,
    },
    /// A query range was empty (`lo > hi`).
    EmptyRange {
        /// Index of the offending attribute.
        attribute: usize,
    },
}

impl std::fmt::Display for NamingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NamingError::BadInterval { lo, hi } => {
                write!(f, "attribute interval [{lo}, {hi}] is empty or not finite")
            }
            NamingError::BadDepth { k } => {
                write!(f, "ObjectID length {k} outside 1..={MAX_DEPTH}")
            }
            NamingError::WrongArity { expected, got } => {
                write!(f, "expected {expected} attribute(s), got {got}")
            }
            NamingError::EmptyRange { attribute } => {
                write!(f, "empty range for attribute {attribute}")
            }
        }
    }
}

impl std::error::Error for NamingError {}

/// A closed attribute domain `[L, H]` with finite endpoints, `L < H`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValueSpace {
    lo: f64,
    hi: f64,
}

impl ValueSpace {
    /// Creates the domain `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`NamingError::BadInterval`] unless `lo < hi` and both are
    /// finite.
    pub fn new(lo: f64, hi: f64) -> Result<Self, NamingError> {
        if !(lo.is_finite() && hi.is_finite() && lo < hi) {
            return Err(NamingError::BadInterval { lo, hi });
        }
        Ok(ValueSpace { lo, hi })
    }

    /// Lower endpoint `L`.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper endpoint `H`.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Normalises a value into exact scaled units, clamping to the domain.
    pub fn normalize(&self, v: f64) -> ScaledValue {
        ScaledValue::normalize(v, self.lo, self.hi)
    }

    /// Maps a boundary interval back to approximate raw endpoints.
    pub fn denormalize(&self, iv: &BoundaryInterval) -> (f64, f64) {
        iv.denormalize(self.lo, self.hi)
    }
}

/// `Single_hash`: interval-preserving naming for one numeric attribute.
///
/// # Example
///
/// ```
/// use kautz::naming::SingleHash;
///
/// let naming = SingleHash::new(0.0, 1000.0, 100)?; // paper's defaults
/// let id = naming.object_id(355.0);
/// assert_eq!(id.len(), 100);
/// let region = naming.region(350.0, 360.0)?;
/// assert!(region.contains(&id));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct SingleHash {
    space: ValueSpace,
    k: usize,
}

impl SingleHash {
    /// Creates a naming scheme over `[lo, hi]` producing length-`k`
    /// ObjectIDs.
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid interval or unsupported depth.
    pub fn new(lo: f64, hi: f64, k: usize) -> Result<Self, NamingError> {
        if k == 0 || k > MAX_DEPTH {
            return Err(NamingError::BadDepth { k });
        }
        Ok(SingleHash { space: ValueSpace::new(lo, hi)?, k })
    }

    /// The ObjectID length `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The attribute domain.
    pub fn space(&self) -> &ValueSpace {
        &self.space
    }

    /// `Single_hash(c, L, H, k)`: the ObjectID of attribute value `c`
    /// (clamped into the domain).
    pub fn object_id(&self, c: f64) -> KautzStr {
        single_hash_scaled(self.space.normalize(c), self.k)
    }

    /// The Kautz region `⟨Single_hash(lo), Single_hash(hi)⟩` holding every
    /// object with attribute value in `[lo, hi]` (§4.2).
    ///
    /// # Errors
    ///
    /// Returns [`NamingError::EmptyRange`] if `lo > hi`.
    pub fn region(&self, lo: f64, hi: f64) -> Result<KautzRegion, NamingError> {
        if lo > hi {
            return Err(NamingError::EmptyRange { attribute: 0 });
        }
        let low_t = self.object_id(lo);
        let high_t = self.object_id(hi);
        Ok(KautzRegion::new(low_t, high_t).expect("naming is monotone"))
    }

    /// The exact attribute subinterval owned by a prefix (a peer whose ID is
    /// `prefix` stores exactly the objects whose value falls here).
    ///
    /// # Errors
    ///
    /// Returns an error if the prefix is deeper than [`MAX_DEPTH`].
    pub fn prefix_interval(&self, prefix: &KautzStr) -> Result<BoundaryInterval, KautzError> {
        crate::partition::interval_of_prefix(prefix)
    }
}

/// A rectangle query in scaled units: per-attribute closed ranges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScaledRect {
    lo: Vec<ScaledValue>,
    hi: Vec<ScaledValue>,
}

impl ScaledRect {
    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.lo.len()
    }

    /// Scaled lower corner.
    pub fn lo(&self) -> &[ScaledValue] {
        &self.lo
    }

    /// Scaled upper corner.
    pub fn hi(&self) -> &[ScaledValue] {
        &self.hi
    }

    /// Whether a partition-tree node rectangle intersects this query.
    pub fn intersects(&self, node: &[BoundaryInterval]) -> bool {
        debug_assert_eq!(node.len(), self.lo.len());
        node.iter()
            .zip(self.lo.iter().zip(self.hi.iter()))
            .all(|(iv, (&lo, &hi))| iv.intersects_query(lo, hi))
    }

    /// Whether a scaled point lies inside the closed rectangle.
    pub fn contains_point(&self, point: &[ScaledValue]) -> bool {
        debug_assert_eq!(point.len(), self.lo.len());
        point
            .iter()
            .zip(self.lo.iter().zip(self.hi.iter()))
            .all(|(&p, (&lo, &hi))| p >= lo && p <= hi)
    }
}

/// `Multiple_hash`: partial-order-preserving naming for `m` numeric
/// attributes (§5).
///
/// # Example
///
/// ```
/// use kautz::naming::MultiHash;
///
/// // Grid information service: memory [0,4096] MB, disk [0,500] GB.
/// let naming = MultiHash::new(&[(0.0, 4096.0), (0.0, 500.0)], 100)?;
/// let id = naming.object_id(&[2048.0, 120.0])?;
/// assert_eq!(id.len(), 100);
/// // "1GB ≤ memory ≤ 4GB and 50GB ≤ disk ≤ 200GB"
/// let rect = naming.query_rect(&[(1024.0, 4096.0), (50.0, 200.0)])?;
/// assert!(rect.contains_point(&naming.normalize_point(&[2048.0, 120.0])?));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct MultiHash {
    spaces: Vec<ValueSpace>,
    k: usize,
}

impl MultiHash {
    /// Creates a naming scheme over the given per-attribute domains,
    /// producing length-`k` ObjectIDs.
    ///
    /// # Errors
    ///
    /// Returns an error if no attributes are given, any interval is invalid,
    /// or the depth is unsupported.
    pub fn new(domains: &[(f64, f64)], k: usize) -> Result<Self, NamingError> {
        if domains.is_empty() {
            return Err(NamingError::WrongArity { expected: 1, got: 0 });
        }
        if k == 0 || k > MAX_DEPTH {
            return Err(NamingError::BadDepth { k });
        }
        let spaces = domains
            .iter()
            .map(|&(lo, hi)| ValueSpace::new(lo, hi))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(MultiHash { spaces, k })
    }

    /// The ObjectID length `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of attributes `m`.
    pub fn arity(&self) -> usize {
        self.spaces.len()
    }

    /// The per-attribute domains.
    pub fn spaces(&self) -> &[ValueSpace] {
        &self.spaces
    }

    /// Normalises a raw point into scaled units.
    ///
    /// # Errors
    ///
    /// Returns [`NamingError::WrongArity`] on arity mismatch.
    pub fn normalize_point(&self, values: &[f64]) -> Result<Vec<ScaledValue>, NamingError> {
        if values.len() != self.spaces.len() {
            return Err(NamingError::WrongArity { expected: self.spaces.len(), got: values.len() });
        }
        Ok(values.iter().zip(self.spaces.iter()).map(|(&v, s)| s.normalize(v)).collect())
    }

    /// `Multiple_hash(v0, …, v(m-1))`: the ObjectID of a multi-attribute
    /// value (each coordinate clamped into its domain).
    ///
    /// # Errors
    ///
    /// Returns [`NamingError::WrongArity`] on arity mismatch.
    pub fn object_id(&self, values: &[f64]) -> Result<KautzStr, NamingError> {
        let scaled = self.normalize_point(values)?;
        Ok(multiple_hash_scaled(&scaled, self.k))
    }

    /// The corner region `⟨Multiple_hash(mins), Multiple_hash(maxs)⟩` of a
    /// rectangle query. The query image is a subset of this region (partial-
    /// order preservation), which bounds MIRA's destination level.
    ///
    /// # Errors
    ///
    /// Returns an error on arity mismatch or an empty per-attribute range.
    pub fn corner_region(&self, query: &[(f64, f64)]) -> Result<KautzRegion, NamingError> {
        let rect = self.query_rect(query)?;
        let low_t = multiple_hash_scaled(rect.lo(), self.k);
        let high_t = multiple_hash_scaled(rect.hi(), self.k);
        Ok(KautzRegion::new(low_t, high_t).expect("naming preserves the partial order"))
    }

    /// Converts a raw rectangle query into exact scaled units.
    ///
    /// # Errors
    ///
    /// Returns an error on arity mismatch or an empty per-attribute range.
    pub fn query_rect(&self, query: &[(f64, f64)]) -> Result<ScaledRect, NamingError> {
        if query.len() != self.spaces.len() {
            return Err(NamingError::WrongArity { expected: self.spaces.len(), got: query.len() });
        }
        let mut lo = Vec::with_capacity(query.len());
        let mut hi = Vec::with_capacity(query.len());
        for (i, (&(a, b), space)) in query.iter().zip(self.spaces.iter()).enumerate() {
            if a > b {
                return Err(NamingError::EmptyRange { attribute: i });
            }
            lo.push(space.normalize(a));
            hi.push(space.normalize(b));
        }
        Ok(ScaledRect { lo, hi })
    }

    /// The exact hyper-rectangle owned by a prefix — MIRA's pruning
    /// predicate is `query_rect.intersects(&prefix_rect(prefix))`.
    ///
    /// # Errors
    ///
    /// Returns an error if the prefix is deeper than [`MAX_DEPTH`].
    pub fn prefix_rect(&self, prefix: &KautzStr) -> Result<Vec<BoundaryInterval>, KautzError> {
        rect_of_prefix(prefix, self.spaces.len())
    }

    /// [`prefix_rect`](Self::prefix_rect) into a caller-owned buffer
    /// (cleared first) — the allocation-free form MIRA's routing loop calls
    /// per hop.
    ///
    /// # Errors
    ///
    /// Returns an error if the prefix is deeper than [`MAX_DEPTH`].
    pub fn prefix_rect_into(
        &self,
        prefix: &KautzStr,
        out: &mut Vec<BoundaryInterval>,
    ) -> Result<(), KautzError> {
        rect_of_prefix_into(prefix, self.spaces.len(), out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_running_example() {
        let naming = SingleHash::new(0.0, 1.0, 4).unwrap();
        assert_eq!(naming.object_id(0.1).to_string(), "0120");
        let region = naming.region(0.1, 0.24).unwrap();
        assert_eq!(region.low().to_string(), "0120");
        assert_eq!(region.high().to_string(), "0202");
        assert_eq!(region.size(), 4);
    }

    #[test]
    fn interval_preservation_exhaustive_small_k() {
        // Definition 2: the image of [a,b] is exactly ⟨F(a), F(b)⟩ — check
        // by enumerating all leaves of a k = 4 tree.
        let naming = SingleHash::new(0.0, 1000.0, 4).unwrap();
        let queries = [(0.0, 1000.0), (0.0, 10.0), (990.0, 1000.0), (400.0, 600.0), (250.0, 250.0)];
        for (a, b) in queries {
            let region = naming.region(a, b).unwrap();
            let whole = KautzRegion::new(
                KautzStr::empty(2).min_extension(4),
                KautzStr::empty(2).max_extension(4),
            )
            .unwrap();
            for leaf in whole.iter() {
                let iv = naming.prefix_interval(&leaf).unwrap();
                let (lo, hi) = naming.space().denormalize(&iv);
                // Leaf intersects [a,b] (with closed/half-open edges)?
                let qa = naming.space().normalize(a);
                let qb = naming.space().normalize(b);
                let intersects = iv.intersects_query(qa, qb);
                assert_eq!(
                    region.contains(&leaf),
                    intersects,
                    "query [{a},{b}] leaf {leaf} interval [{lo},{hi})"
                );
            }
        }
    }

    #[test]
    fn region_rejects_reversed_query() {
        let naming = SingleHash::new(0.0, 1.0, 4).unwrap();
        assert!(matches!(naming.region(0.9, 0.1), Err(NamingError::EmptyRange { .. })));
    }

    #[test]
    fn single_hash_k100_region_sizes_scale_with_range() {
        let naming = SingleHash::new(0.0, 1000.0, 100).unwrap();
        let small = naming.region(500.0, 501.0).unwrap();
        let large = naming.region(100.0, 900.0).unwrap();
        assert!(large.size() > small.size());
    }

    #[test]
    fn multi_hash_rejects_bad_arity() {
        let naming = MultiHash::new(&[(0.0, 1.0), (0.0, 1.0)], 8).unwrap();
        assert!(matches!(
            naming.object_id(&[0.5]),
            Err(NamingError::WrongArity { expected: 2, got: 1 })
        ));
    }

    #[test]
    fn corner_region_contains_query_image() {
        // The image of any in-rectangle point must fall inside the corner
        // region (the partial-order preservation property MIRA relies on).
        let naming = MultiHash::new(&[(0.0, 100.0), (0.0, 100.0)], 10).unwrap();
        let query = [(20.0, 60.0), (30.0, 80.0)];
        let region = naming.corner_region(&query).unwrap();
        for i in 0..=20 {
            for j in 0..=20 {
                let p = [20.0 + 2.0 * i as f64, 30.0 + 2.5 * j as f64];
                let id = naming.object_id(&p).unwrap();
                assert!(region.contains(&id), "point {p:?}");
            }
        }
    }

    #[test]
    fn prefix_rect_prunes_consistently_with_membership() {
        let naming = MultiHash::new(&[(0.0, 10.0), (0.0, 10.0)], 6).unwrap();
        let rect = naming.query_rect(&[(2.0, 4.0), (6.0, 9.0)]).unwrap();
        // If a leaf's object is inside the query, every ancestor must pass
        // the pruning test.
        for i in 0..=10 {
            for j in 0..=10 {
                let p = [2.0 + 0.2 * i as f64, 6.0 + 0.3 * j as f64];
                let id = naming.object_id(&p).unwrap();
                for depth in 1..=6 {
                    let node = naming.prefix_rect(&id.take_front(depth)).unwrap();
                    assert!(rect.intersects(&node), "point {p:?} depth {depth}");
                }
            }
        }
    }

    #[test]
    fn value_space_validation() {
        assert!(ValueSpace::new(1.0, 1.0).is_err());
        assert!(ValueSpace::new(f64::NAN, 1.0).is_err());
        assert!(ValueSpace::new(0.0, f64::INFINITY).is_err());
        assert!(ValueSpace::new(-5.0, 5.0).is_ok());
    }
}
