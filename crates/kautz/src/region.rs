//! Kautz regions: contiguous lexicographic ranges of fixed-length Kautz
//! strings (Definition 1 of the paper).

use crate::{KautzError, KautzStr};

/// The Kautz region `⟨low, high⟩`: all Kautz strings `s` of the same base and
/// length as the endpoints with `low ⪯ s ⪯ high`.
///
/// Regions are the image of value ranges under the order-preserving
/// [`SingleHash`](crate::naming::SingleHash) naming (Definition 2), and the
/// routing target of the PIRA algorithm.
///
/// # Example
///
/// ```
/// use kautz::{KautzRegion, KautzStr};
///
/// // Paper example: ⟨010, 021⟩ = {010, 012, 020, 021}.
/// let region = KautzRegion::new("010".parse()?, "021".parse()?)?;
/// assert_eq!(region.size(), 4);
/// assert!(region.contains(&"012".parse()?));
/// assert!(!region.contains(&"101".parse()?));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct KautzRegion {
    low: KautzStr,
    high: KautzStr,
}

impl KautzRegion {
    /// Creates the region `⟨low, high⟩`.
    ///
    /// # Errors
    ///
    /// Returns an error if the endpoints differ in base or length, or if
    /// `low > high` (empty regions are not representable, mirroring the
    /// paper's definition).
    pub fn new(low: KautzStr, high: KautzStr) -> Result<Self, KautzError> {
        if low.base() != high.base() {
            return Err(KautzError::BaseMismatch { left: low.base(), right: high.base() });
        }
        if low.len() != high.len() {
            return Err(KautzError::LengthMismatch { left: low.len(), right: high.len() });
        }
        if low > high {
            return Err(KautzError::EmptyRegion);
        }
        Ok(KautzRegion { low, high })
    }

    /// The smallest string in the region.
    pub fn low(&self) -> &KautzStr {
        &self.low
    }

    /// The largest string in the region.
    pub fn high(&self) -> &KautzStr {
        &self.high
    }

    /// The common string length `k` of the region's members.
    pub fn string_len(&self) -> usize {
        self.low.len()
    }

    /// The base of the region's members.
    pub fn base(&self) -> u8 {
        self.low.base()
    }

    /// Whether `s` belongs to the region. Strings of a different length or
    /// base never belong.
    pub fn contains(&self, s: &KautzStr) -> bool {
        s.len() == self.low.len()
            && s.base() == self.low.base()
            && *s >= self.low
            && *s <= self.high
    }

    /// Whether some member of the region has `prefix` as a prefix.
    ///
    /// This is PIRA's pruning predicate: a subtree whose members all share
    /// `prefix` can be pruned iff this returns `false`. Computed without
    /// enumeration via the min/max extensions of the prefix:
    /// `min_ext(prefix) ≤ high ∧ max_ext(prefix) ≥ low` — streamed
    /// symbol-by-symbol, so the test never materializes the extensions.
    pub fn intersects_prefix(&self, prefix: &KautzStr) -> bool {
        if prefix.base() != self.base() || prefix.len() > self.string_len() {
            return false;
        }
        self.intersects_extended(prefix.symbols(), &[])
    }

    /// [`intersects_prefix`](Self::intersects_prefix) for the virtual prefix
    /// `head ++ tail` without building the concatenation.
    ///
    /// `tail` is a symbol slice (typically `cid.symbols()[strip..]` for a
    /// neighbor's PeerID). When the junction repeats a symbol — `head.last()
    /// == tail.first()`, so the concatenation is not a valid Kautz string —
    /// the test degrades to `head` alone, matching PIRA's never-prune
    /// fallback for covers that violate the neighborhood invariant.
    pub fn intersects_prefix_parts(&self, head: &KautzStr, tail: &[u8]) -> bool {
        if head.base() != self.base() {
            return false;
        }
        let tail = match (head.last(), tail.first()) {
            (Some(a), Some(&b)) if a == b => &[][..],
            _ => tail,
        };
        if head.len() + tail.len() > self.string_len() {
            return false;
        }
        self.intersects_extended(head.symbols(), tail)
    }

    /// Core of the pruning predicate: `min_ext(head ++ tail) ≤ high ∧
    /// max_ext(head ++ tail) ≥ low`, with both extensions streamed.
    fn intersects_extended(&self, head: &[u8], tail: &[u8]) -> bool {
        use std::cmp::Ordering;
        cmp_extension(head, tail, self.base(), self.high.symbols(), true) != Ordering::Greater
            && cmp_extension(head, tail, self.base(), self.low.symbols(), false) != Ordering::Less
    }

    /// The longest common prefix of the two endpoints (`ComT` in §4.2).
    ///
    /// Every member of the region starts with this prefix.
    pub fn common_prefix(&self) -> KautzStr {
        self.low.common_prefix(&self.high)
    }

    /// Number of strings in the region.
    pub fn size(&self) -> u128 {
        self.high.rank() - self.low.rank() + 1
    }

    /// Splits the region into at most `base + 1` sub-regions whose endpoints
    /// share a non-empty common prefix (§4.2: "at most three" for base 2).
    ///
    /// If the endpoints already share a prefix the result is `[self]`.
    /// Otherwise the members are grouped by first symbol: the group of
    /// `low`'s first symbol, full first-symbol groups in between, and the
    /// group of `high`'s first symbol.
    pub fn split_by_common_prefix(&self) -> Vec<KautzRegion> {
        let k = self.string_len();
        if k == 0 {
            return vec![self.clone()];
        }
        let (a, b) = (self.low.first().expect("k > 0"), self.high.first().expect("k > 0"));
        if a == b {
            return vec![self.clone()];
        }
        let mut out = Vec::with_capacity((b - a + 1) as usize);
        for sym in a..=b {
            let head = KautzStr::new(self.base(), vec![sym]).expect("single symbol");
            let lo = if sym == a { self.low.clone() } else { head.min_extension(k) };
            let hi = if sym == b { self.high.clone() } else { head.max_extension(k) };
            out.push(KautzRegion::new(lo, hi).expect("group endpoints ordered"));
        }
        out
    }

    /// Iterates over every string in the region in increasing order.
    ///
    /// Intended for tests and ground-truth computation on small spaces; the
    /// cost is `O(size · k)`.
    pub fn iter(&self) -> Iter<'_> {
        Iter { next_rank: self.low.rank(), last_rank: self.high.rank(), region: self }
    }
}

/// Lexicographically compares the minimal (`min`) or maximal extension of
/// `head ++ tail` to length `other.len()` against `other`, producing the
/// extension symbols on the fly (the streamed twin of
/// [`KautzStr::min_extension`]/[`KautzStr::max_extension`], which both
/// continue a prefix one symbol at a time from the previous symbol alone).
fn cmp_extension(
    head: &[u8],
    tail: &[u8],
    base: u8,
    other: &[u8],
    min: bool,
) -> std::cmp::Ordering {
    let mut prev = None;
    for (i, &o) in other.iter().enumerate() {
        let sym = if i < head.len() {
            head[i]
        } else if i < head.len() + tail.len() {
            tail[i - head.len()]
        } else if min {
            match prev {
                Some(0) => 1,
                _ => 0,
            }
        } else {
            match prev {
                Some(s) if s == base => base - 1,
                _ => base,
            }
        };
        match sym.cmp(&o) {
            std::cmp::Ordering::Equal => {}
            ord => return ord,
        }
        prev = Some(sym);
    }
    std::cmp::Ordering::Equal
}

impl std::fmt::Display for KautzRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "⟨{}, {}⟩", self.low, self.high)
    }
}

/// Iterator over the members of a [`KautzRegion`] in increasing order.
#[derive(Debug)]
pub struct Iter<'a> {
    next_rank: u128,
    last_rank: u128,
    region: &'a KautzRegion,
}

impl Iterator for Iter<'_> {
    type Item = KautzStr;

    fn next(&mut self) -> Option<KautzStr> {
        if self.next_rank > self.last_rank {
            return None;
        }
        let s = KautzStr::unrank(self.region.base(), self.region.string_len(), self.next_rank)
            .expect("rank within region");
        self.next_rank += 1;
        Some(s)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = (self.last_rank + 1 - self.next_rank) as usize;
        (n, Some(n))
    }
}

impl<'a> IntoIterator for &'a KautzRegion {
    type Item = KautzStr;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ks(s: &str) -> KautzStr {
        s.parse().unwrap()
    }

    fn region(lo: &str, hi: &str) -> KautzRegion {
        KautzRegion::new(ks(lo), ks(hi)).unwrap()
    }

    #[test]
    fn paper_example_members() {
        let r = region("010", "021");
        let members: Vec<String> = r.iter().map(|s| s.to_string()).collect();
        assert_eq!(members, vec!["010", "012", "020", "021"]);
    }

    #[test]
    fn rejects_reversed_endpoints() {
        assert_eq!(KautzRegion::new(ks("021"), ks("010")), Err(KautzError::EmptyRegion));
    }

    #[test]
    fn rejects_mixed_lengths() {
        assert!(matches!(
            KautzRegion::new(ks("01"), ks("010")),
            Err(KautzError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn contains_matches_iteration() {
        let r = region("0120", "0202");
        let members: Vec<KautzStr> = r.iter().collect();
        // Paper §4.1: [0.1, 0.24] → ⟨0120, 0202⟩ = {0120, 0121, 0201, 0202}
        // (the four adjoining leaves P, R, W, S of Figure 3).
        assert_eq!(members.len(), 4);
        for m in &members {
            assert!(r.contains(m));
        }
        assert!(!r.contains(&ks("0102")));
        assert!(!r.contains(&ks("0210")));
    }

    #[test]
    fn intersects_prefix_agrees_with_enumeration() {
        let r = region("0120", "0202");
        let prefixes = ["0", "01", "02", "012", "020", "1", "2", "021", "0210"];
        for p in prefixes {
            let prefix = ks(p);
            let truth = r.iter().any(|s| prefix.is_prefix_of(&s));
            assert_eq!(r.intersects_prefix(&prefix), truth, "prefix {p}");
        }
        // The empty prefix intersects every non-empty region.
        assert!(r.intersects_prefix(&KautzStr::empty(2)));
    }

    #[test]
    fn prefix_longer_than_k_never_intersects() {
        let r = region("010", "021");
        assert!(!r.intersects_prefix(&ks("0102")));
    }

    #[test]
    fn intersects_prefix_parts_agrees_with_concat() {
        // The split form must behave exactly like concatenating and testing,
        // with PIRA's fallback (test the head alone) on a repeated junction.
        let r = region("0120", "0202");
        let heads = ["", "0", "01", "02", "2", "012", "020"];
        let tails: [&[u8]; 6] = [&[], &[0], &[2], &[0, 1], &[2, 0], &[1, 2, 0, 1]];
        for h in heads {
            let head = if h.is_empty() { KautzStr::empty(2) } else { ks(h) };
            for tail in tails {
                let expect = match head.concat(&tail_str(tail)) {
                    Ok(w) => r.intersects_prefix(&w),
                    Err(_) => r.intersects_prefix(&head),
                };
                assert_eq!(
                    r.intersects_prefix_parts(&head, tail),
                    expect,
                    "head {head} tail {tail:?}"
                );
            }
        }
    }

    fn tail_str(tail: &[u8]) -> KautzStr {
        KautzStr::new(2, tail.to_vec()).unwrap()
    }

    #[test]
    fn split_by_common_prefix_noop_when_shared() {
        let r = region("0120", "0202");
        assert_eq!(r.split_by_common_prefix(), vec![r.clone()]);
        assert_eq!(r.common_prefix(), ks("0"));
    }

    #[test]
    fn split_by_common_prefix_covers_exactly() {
        // Endpoints starting with 0 and 2: three groups.
        let r = region("0121", "2021");
        let parts = r.split_by_common_prefix();
        assert_eq!(parts.len(), 3);
        // Each part has a non-empty common prefix.
        for p in &parts {
            assert!(!p.common_prefix().is_empty());
        }
        // The parts partition the region exactly.
        let whole: Vec<KautzStr> = r.iter().collect();
        let mut union: Vec<KautzStr> = parts.iter().flat_map(|p| p.iter()).collect();
        union.sort();
        assert_eq!(union, whole);
    }

    #[test]
    fn size_matches_rank_arithmetic() {
        let r = region("0101", "2121");
        assert_eq!(r.size(), 24); // whole space of k = 4
        assert_eq!(region("0120", "0120").size(), 1);
    }
}
