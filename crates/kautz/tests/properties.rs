//! Property-based tests for the Kautz namespace invariants the higher layers
//! (FISSIONE routing, PIRA/MIRA pruning) depend on.

use kautz::fixed::ScaledValue;
use kautz::naming::{MultiHash, SingleHash};
use kautz::partition::{multiple_hash_scaled, rect_of_prefix, single_hash_scaled};
use kautz::{KautzRegion, KautzStr};
use proptest::prelude::*;

/// Strategy: a uniformly random Kautz string of the given base and length.
fn kautz_str(base: u8, len: usize) -> impl Strategy<Value = KautzStr> {
    let count = KautzStr::count(base, len);
    (0..count).prop_map(move |r| KautzStr::unrank(base, len, r).expect("rank in range"))
}

/// Strategy: an ordered pair of same-length Kautz strings (a valid region).
fn region(base: u8, len: usize) -> impl Strategy<Value = KautzRegion> {
    (kautz_str(base, len), kautz_str(base, len)).prop_map(|(a, b)| {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        KautzRegion::new(lo, hi).expect("ordered endpoints")
    })
}

proptest! {
    #[test]
    fn unranked_strings_are_valid(s in kautz_str(2, 12)) {
        prop_assert!(KautzStr::new(2, s.symbols().to_vec()).is_ok());
    }

    #[test]
    fn rank_unrank_roundtrip(s in kautz_str(2, 20)) {
        let r = s.rank();
        prop_assert_eq!(KautzStr::unrank(2, 20, r).unwrap(), s);
    }

    #[test]
    fn rank_is_order_isomorphic(a in kautz_str(2, 10), b in kautz_str(2, 10)) {
        prop_assert_eq!(a.cmp(&b), a.rank().cmp(&b.rank()));
    }

    #[test]
    fn extensions_bound_all_extensions(prefix in kautz_str(2, 4), suffix_rank in 0u128..1000) {
        // Any length-10 extension of `prefix` lies between min/max extension.
        let k = 10;
        let tail_len = k - prefix.len();
        // Build an arbitrary valid tail by unranking within the allowed space
        // and gluing only if the junction is legal.
        let tail = KautzStr::unrank(2, tail_len, suffix_rank % KautzStr::count(2, tail_len)).unwrap();
        if let Ok(full) = prefix.concat(&tail) {
            prop_assert!(prefix.min_extension(k) <= full);
            prop_assert!(full <= prefix.max_extension(k));
        }
    }

    #[test]
    fn longest_suffix_prefix_matches_bruteforce(a in kautz_str(2, 8), b in kautz_str(2, 8)) {
        let fast = a.longest_suffix_prefix(&b);
        let mut brute = 0;
        for j in 1..=8usize {
            if a.symbols()[8 - j..] == b.symbols()[..j] {
                brute = j;
            }
        }
        prop_assert_eq!(fast, brute);
    }

    #[test]
    fn successor_is_rank_plus_one(s in kautz_str(2, 9)) {
        match s.successor() {
            Some(next) => prop_assert_eq!(next.rank(), s.rank() + 1),
            None => prop_assert_eq!(s.rank(), KautzStr::count(2, 9) - 1),
        }
    }

    #[test]
    fn region_split_partitions_exactly(r in region(2, 6)) {
        let parts = r.split_by_common_prefix();
        prop_assert!(parts.len() <= 3);
        // Non-empty common prefix in each part (unless k == 0).
        for p in &parts {
            prop_assert!(!p.common_prefix().is_empty());
        }
        // Sizes add up and parts are disjoint and ordered.
        let total: u128 = parts.iter().map(|p| p.size()).sum();
        prop_assert_eq!(total, r.size());
        for w in parts.windows(2) {
            prop_assert!(w[0].high() < w[1].low());
        }
        prop_assert_eq!(parts.first().unwrap().low(), r.low());
        prop_assert_eq!(parts.last().unwrap().high(), r.high());
    }

    #[test]
    fn intersects_prefix_agrees_with_enumeration(r in region(2, 6), p in kautz_str(2, 3)) {
        let truth = r.iter().any(|s| p.is_prefix_of(&s));
        prop_assert_eq!(r.intersects_prefix(&p), truth);
    }

    #[test]
    fn single_hash_is_monotone(mut a in 0f64..=1000.0, mut b in 0f64..=1000.0) {
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        let naming = SingleHash::new(0.0, 1000.0, 32).unwrap();
        prop_assert!(naming.object_id(a) <= naming.object_id(b));
    }

    #[test]
    fn single_hash_leaf_interval_contains_value(x in 0f64..=1.0) {
        let k = 40;
        let v = ScaledValue::from_unit(x);
        let leaf = single_hash_scaled(v, k);
        let iv = kautz::partition::interval_of_prefix(&leaf).unwrap();
        prop_assert!(iv.contains_value(v));
    }

    #[test]
    fn region_covers_every_queried_value(mut a in 0f64..=1000.0, mut b in 0f64..=1000.0, t in 0f64..=1.0) {
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        let naming = SingleHash::new(0.0, 1000.0, 24).unwrap();
        let region = naming.region(a, b).unwrap();
        // Any value inside [a, b] maps inside the region (interval
        // preservation, Definition 2).
        let mid = a + t * (b - a);
        prop_assert!(region.contains(&naming.object_id(mid)));
    }

    #[test]
    fn multi_hash_preserves_partial_order(
        a0 in 0f64..=1.0, a1 in 0f64..=1.0, a2 in 0f64..=1.0,
        d0 in 0f64..=1.0, d1 in 0f64..=1.0, d2 in 0f64..=1.0,
    ) {
        // Definition 4: u ⪯ v (componentwise) ⇒ F(u) ≤ F(v).
        let u = [a0, a1, a2];
        let v = [(a0 + d0).min(1.0), (a1 + d1).min(1.0), (a2 + d2).min(1.0)];
        let su: Vec<ScaledValue> = u.iter().map(|&x| ScaledValue::from_unit(x)).collect();
        let sv: Vec<ScaledValue> = v.iter().map(|&x| ScaledValue::from_unit(x)).collect();
        prop_assert!(multiple_hash_scaled(&su, 30) <= multiple_hash_scaled(&sv, 30));
    }

    #[test]
    fn multi_hash_point_stays_in_every_ancestor_rect(
        x in 0f64..=1.0, y in 0f64..=1.0,
    ) {
        let vals = [ScaledValue::from_unit(x), ScaledValue::from_unit(y)];
        let k = 20;
        let id = multiple_hash_scaled(&vals, k);
        for depth in 1..=k {
            let rect = rect_of_prefix(&id.take_front(depth), 2).unwrap();
            for (d, iv) in rect.iter().enumerate() {
                prop_assert!(iv.contains_value(vals[d]), "depth {} dim {}", depth, d);
            }
        }
    }

    #[test]
    fn corner_region_bounds_query_image(
        mut x0 in 0f64..=100.0, mut x1 in 0f64..=100.0,
        mut y0 in 0f64..=100.0, mut y1 in 0f64..=100.0,
        tx in 0f64..=1.0, ty in 0f64..=1.0,
    ) {
        if x0 > x1 { std::mem::swap(&mut x0, &mut x1); }
        if y0 > y1 { std::mem::swap(&mut y0, &mut y1); }
        let naming = MultiHash::new(&[(0.0, 100.0), (0.0, 100.0)], 24).unwrap();
        let region = naming.corner_region(&[(x0, x1), (y0, y1)]).unwrap();
        let p = [x0 + tx * (x1 - x0), y0 + ty * (y1 - y0)];
        prop_assert!(region.contains(&naming.object_id(&p).unwrap()));
    }
}
