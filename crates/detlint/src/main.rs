//! CLI for the determinism linter.
//!
//! ```text
//! cargo run -p detlint -- --workspace          # scan the whole tree
//! cargo run -p detlint -- --root <dir>         # scan one directory
//! cargo run -p detlint -- --workspace --json   # machine-readable report
//! ```
//!
//! Exits 0 when the scan is clean, 1 when any unannotated violation was
//! found, 2 on usage or I/O errors — so CI can gate on the exit code and
//! the fixture run can assert non-zero.

use std::path::PathBuf;

fn main() {
    let mut workspace = false;
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => usage("--root requires a directory"),
            },
            other => usage(&format!("unknown argument `{other}`")),
        }
    }

    let report = match (workspace, root) {
        (true, None) => detlint::scan_workspace(&detlint::workspace_root()),
        (false, Some(dir)) => detlint::scan_dir(&dir),
        (true, Some(_)) => {
            usage("--workspace and --root are mutually exclusive");
            unreachable!()
        }
        (false, None) => {
            usage("pass --workspace or --root <dir>");
            unreachable!()
        }
    };

    match report {
        Ok(report) => {
            if json {
                print!("{}", report.to_json());
            } else {
                print!("{}", report.to_text());
            }
            std::process::exit(if report.is_clean() { 0 } else { 1 });
        }
        Err(e) => {
            eprintln!("detlint: scan failed: {e}");
            std::process::exit(2);
        }
    }
}

fn usage(msg: &str) {
    eprintln!("detlint: {msg}");
    eprintln!("usage: detlint (--workspace | --root <dir>) [--json]");
    std::process::exit(2);
}
