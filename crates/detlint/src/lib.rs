//! `detlint` — the workspace determinism linter.
//!
//! Every claim this reproduction makes rests on one invariant: reports are
//! a pure function of `(scheme, seed, config)`, bitwise identical across
//! thread counts and runs. This crate turns that convention into a
//! machine-checked contract: a static pass over every simulation and
//! report-path crate's Rust sources enforcing six named rules.
//!
//! # The rules
//!
//! * **D1** — no `std::collections` hash maps or hash sets. Their
//!   iteration order depends on a per-process (per-thread, per-instance)
//!   random hasher seed; `BTreeMap`/`BTreeSet` or sorted vectors are
//!   required. (The bug class that already shipped once: `FaultPlan`'s
//!   crashed-peer set made `crashed_nodes()` run-dependent until PR 3
//!   converted it to a `BTreeSet` — see `simnet::faults`.)
//! * **D2** — no wall-clock reads (`Instant::now`, `SystemTime::now`)
//!   outside an explicitly annotated timing site. The one legitimate site
//!   is the `baseline.rs` qps stopwatch, whose output is documented as the
//!   single hardware-dependent column in the committed baseline.
//! * **D3** — no ambient or shared-RNG draws (`thread_rng`, `from_entropy`,
//!   `rand::random`): delivery and dispatch paths must derive all
//!   randomness as pure functions of `(seed, index)` — the PR 5
//!   `LatencyModel::Uniform` bug class, where jitter drawn from a shared
//!   stream in delivery order leaked scheduling order into edge costs.
//! * **D4** — no unordered iteration (`.keys()` / `.values()` /
//!   `.drain()` / `.iter()` / `for … in`) over a hash collection flowing
//!   onward without an intervening sort. This is the rule that catches a
//!   hash map that survived D1 behind a pragma but then leaks its order —
//!   and the rule that flags the pre-fix `skipgraph` level-builder, whose
//!   `groups.values()` walked membership groups in hash order.
//! * **D5** — no `println!` / `eprintln!` / `dbg!` in **library** code.
//!   Library functions return strings and reports; only binaries, tests,
//!   examples, benches, and `main.rs`/`build.rs` may print. The rule keeps
//!   the observability plane honest: a trace or metric that goes to stdout
//!   from inside a library bypasses the deterministic report path (and
//!   `dbg!` left behind after a debugging session interleaves
//!   nondeterministically under the parallel driver). Files whose path
//!   contains a `bin`, `tests`, `examples`, or `benches` component — and
//!   `main.rs`/`build.rs` themselves — are allowlisted by construction.
//! * **D6** — no `.clone()` of query-path routing state (`FaultPlan`,
//!   `NetModel`, `KautzRegion`) in library code. These types are the
//!   per-query constants of the hot path; the zero-allocation work gave
//!   every consumer a borrow-or-intern alternative (`Sim::with_faults_ref`
//!   borrows the caller's plan, schemes hold region tables by index), so a
//!   clone on a query path is an O(plan)-per-query allocation regression
//!   waiting to happen. Per-run setup clones (a sweep handing an owned
//!   plan to a worker) are legitimate and carry audited pragmas. The same
//!   path allowlist as D5 applies: binaries, tests, examples, and benches
//!   may clone freely.
//!
//! # Pragmas
//!
//! Audited exceptions are annotated in source:
//!
//! ```text
//! // detlint: allow(D2) — qps stopwatch; the one hardware-dependent column
//! ```
//!
//! A pragma names one or more rules (`allow(D1, D4)`) and **must** carry a
//! reason after a `—`, `-`, or `:` separator; a reasonless pragma does not
//! suppress anything and is itself reported. A pragma written as a
//! trailing comment covers its own line; written on a line of its own it
//! covers the next line that contains code.
//!
//! # Scope
//!
//! [`scan_workspace`] walks `crates/`, `src/`, `tests/`, and `examples/`.
//! `shims/` is excluded by design — those crates are offline stand-ins for
//! external dependencies (`criterion`'s stopwatch is wall-clock because
//! real criterion's is) and never execute on a simulation or report path.
//! The linter's own seeded-violation fixtures under
//! `crates/detlint/fixtures/` are excluded from the workspace pass and
//! scanned by the self-tests instead, which assert that every rule fires
//! there (the lint is itself tested before it is trusted as a CI gate).
//!
//! The scanner is lexical, not type-directed: it strips comments, string
//! and char literals with a small state machine, then matches rule tokens
//! at identifier boundaries. D4 additionally tracks which `let` bindings
//! and struct fields were declared with a hash-collection type and flags
//! unordered-iteration calls on those names unless a `sort` appears within
//! the next few lines. That is deliberately conservative in both
//! directions — which is why the static pass is paired with the runtime
//! canary (`dht_api::DigestReport` + `tests/hasher_perturbation.rs` at the
//! workspace root): the rules catch the pattern, the canary catches
//! whatever the rules miss.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::path::{Path, PathBuf};

/// The named determinism rules of the contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// No hash maps / hash sets in simulation or report-path code.
    D1,
    /// No wall-clock reads outside an annotated timing site.
    D2,
    /// No ambient / shared-RNG draws.
    D3,
    /// No unordered iteration over hash collections without a sort.
    D4,
    /// No `println!`/`eprintln!`/`dbg!` in library code (binaries, tests,
    /// examples, and benches are allowlisted by path).
    D5,
    /// No `.clone()` of query-path routing state (`FaultPlan`, `NetModel`,
    /// `KautzRegion`) in library code — borrow or intern instead.
    D6,
    /// Pragma hygiene: a pragma comment that is malformed or carries no
    /// reason (not part of the 6-rule contract, but reported so a broken
    /// annotation can never silently stop suppressing).
    BadPragma,
}

/// The six contract rules, in order.
pub const RULES: [Rule; 6] = [Rule::D1, Rule::D2, Rule::D3, Rule::D4, Rule::D5, Rule::D6];

impl Rule {
    /// The identifier used in pragmas and reports.
    pub fn id(self) -> &'static str {
        match self {
            Rule::D1 => "D1",
            Rule::D2 => "D2",
            Rule::D3 => "D3",
            Rule::D4 => "D4",
            Rule::D5 => "D5",
            Rule::D6 => "D6",
            Rule::BadPragma => "pragma",
        }
    }

    /// Parses a pragma rule identifier (case-sensitive).
    pub fn parse(s: &str) -> Option<Rule> {
        match s.trim() {
            "D1" => Some(Rule::D1),
            "D2" => Some(Rule::D2),
            "D3" => Some(Rule::D3),
            "D4" => Some(Rule::D4),
            "D5" => Some(Rule::D5),
            "D6" => Some(Rule::D6),
            _ => None,
        }
    }

    /// One-line statement of what the rule forbids.
    pub fn summary(self) -> &'static str {
        match self {
            Rule::D1 => "hash collection in simulation/report-path code (use BTree or sorted vec)",
            Rule::D2 => "wall-clock read outside the annotated timing allowlist",
            Rule::D3 => "ambient/shared-RNG draw (randomness must be a pure function of seed)",
            Rule::D4 => "unordered iteration over a hash collection without an intervening sort",
            Rule::D5 => "stdout/stderr print in library code (return a String; binaries print)",
            Rule::D6 => "clone of query-path routing state (borrow the plan/model/region instead)",
            Rule::BadPragma => "malformed or reasonless pragma",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Path of the offending file (as given to the scanner).
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The rule violated.
    pub rule: Rule,
    /// The token or pattern that fired.
    pub token: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

/// One audited exception: a violation suppressed by a reasoned pragma.
#[derive(Debug, Clone)]
pub struct Allowance {
    /// Path of the annotated file.
    pub file: PathBuf,
    /// 1-based line number of the suppressed violation.
    pub line: usize,
    /// The rule suppressed.
    pub rule: Rule,
    /// The audit reason carried by the pragma.
    pub reason: String,
}

/// The result of a scan: violations, audited exceptions, and coverage.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Unsuppressed violations (the scan fails if any exist).
    pub findings: Vec<Finding>,
    /// Violations suppressed by reasoned pragmas (the audit trail).
    pub allowed: Vec<Allowance>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when no unsuppressed violation was found.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Findings for one rule.
    pub fn findings_for(&self, rule: Rule) -> Vec<&Finding> {
        self.findings.iter().filter(|f| f.rule == rule).collect()
    }

    /// Renders the machine-readable JSON report (hand-rolled — the build
    /// environment has no serde; same convention as `BENCH_baseline.json`).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(s, "  \"clean\": {},", self.is_clean());
        let _ = writeln!(s, "  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            let comma = if i + 1 < self.findings.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "    {{ \"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"token\": \"{}\", \
                 \"snippet\": \"{}\" }}{comma}",
                json_escape(&f.file.display().to_string()),
                f.line,
                f.rule,
                json_escape(&f.token),
                json_escape(&f.snippet),
            );
        }
        let _ = writeln!(s, "  ],");
        let _ = writeln!(s, "  \"allowed\": [");
        for (i, a) in self.allowed.iter().enumerate() {
            let comma = if i + 1 < self.allowed.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "    {{ \"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \
                 \"reason\": \"{}\" }}{comma}",
                json_escape(&a.file.display().to_string()),
                a.line,
                a.rule,
                json_escape(&a.reason),
            );
        }
        let _ = writeln!(s, "  ]");
        let _ = writeln!(s, "}}");
        s
    }

    /// Renders the human-readable report.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for f in &self.findings {
            let _ = writeln!(
                s,
                "{}:{}: [{}] `{}` — {}\n    {}",
                f.file.display(),
                f.line,
                f.rule,
                f.token,
                f.rule.summary(),
                f.snippet,
            );
        }
        let _ = writeln!(
            s,
            "detlint: {} file(s) scanned, {} violation(s), {} audited exception(s)",
            self.files_scanned,
            self.findings.len(),
            self.allowed.len(),
        );
        s
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Source pre-pass: split code from comments.
// ---------------------------------------------------------------------------

/// One source line split into its code text (string/char literals blanked,
/// comments removed) and its comment text (for pragma parsing).
#[derive(Debug, Clone, Default)]
struct SplitLine {
    code: String,
    comment: String,
}

/// Strips comments and literals with a small state machine. Rust block
/// comments nest; strings handle escapes; raw strings handle `#` fences;
/// `'` opens a char literal only when one closes shortly (otherwise it is
/// a lifetime). Newlines always advance the line counter, whatever state
/// is active, so findings keep their true line numbers.
fn split_lines(text: &str) -> Vec<SplitLine> {
    #[derive(PartialEq)]
    enum St {
        Code,
        Line,
        Block(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let mut st = St::Code;
    let mut out: Vec<SplitLine> = Vec::new();
    let mut cur = SplitLine::default();
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if st == St::Line {
                st = St::Code;
            }
            out.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match st {
            St::Code => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    st = St::Line;
                    i += 2;
                    continue;
                }
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    st = St::Block(1);
                    i += 2;
                    continue;
                }
                if c == '"' {
                    cur.code.push(' ');
                    st = St::Str;
                    i += 1;
                    continue;
                }
                // Raw (and raw-byte) string openers: r"…", r#"…"#, br"…".
                if c == 'r' || (c == 'b' && chars.get(i + 1) == Some(&'r')) {
                    let prev_ident =
                        i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_');
                    let mut j = i + if c == 'b' { 2 } else { 1 };
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if !prev_ident && chars.get(j) == Some(&'"') {
                        cur.code.push(' ');
                        st = St::RawStr(hashes);
                        i = j + 1;
                        continue;
                    }
                }
                if c == '\'' {
                    // Char literal iff it closes shortly; else a lifetime.
                    let is_char = match chars.get(i + 1) {
                        Some('\\') => true,
                        Some(_) => chars.get(i + 2) == Some(&'\''),
                        None => false,
                    };
                    if is_char {
                        cur.code.push(' ');
                        st = St::Char;
                        i += 1;
                        continue;
                    }
                }
                cur.code.push(c);
                i += 1;
            }
            St::Line => {
                cur.comment.push(c);
                i += 1;
            }
            St::Block(depth) => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    st = if depth == 1 { St::Code } else { St::Block(depth - 1) };
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    st = St::Block(depth + 1);
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            St::Str => {
                if c == '\\' && chars.get(i + 1) != Some(&'\n') {
                    i += 2;
                } else {
                    if c == '"' {
                        st = St::Code;
                    }
                    i += 1;
                }
            }
            St::RawStr(hashes) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut seen = 0u32;
                    while seen < hashes && chars.get(j) == Some(&'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        st = St::Code;
                        i = j;
                        continue;
                    }
                }
                i += 1;
            }
            St::Char => {
                if c == '\\' && chars.get(i + 1) != Some(&'\n') {
                    i += 2;
                } else {
                    if c == '\'' {
                        st = St::Code;
                    }
                    i += 1;
                }
            }
        }
    }
    out.push(cur);
    out
}

// ---------------------------------------------------------------------------
// Pragmas.
// ---------------------------------------------------------------------------

/// A parsed pragma (the grammar in the crate docs).
#[derive(Debug, Clone)]
struct Pragma {
    rules: Vec<Rule>,
    reason: String,
    /// True when the pragma comment shared its line with code (covers that
    /// line); false for a standalone comment line (covers the next code
    /// line).
    trailing: bool,
}

/// Parses the pragma out of one line's comment text, if present. A pragma
/// must *start* the comment (after doc-comment markers), so prose that
/// merely mentions the grammar never parses as one. Returns `Err(token)`
/// for a pragma-shaped comment that does not parse.
fn parse_pragma(comment: &str, has_code: bool) -> Option<Result<Pragma, String>> {
    let t = comment.trim_start_matches(['!', '/', ' ', '\t']);
    let rest = t.strip_prefix("detlint:")?.trim_start();
    let Some(body) = rest.strip_prefix("allow(") else {
        return Some(Err(rest.chars().take(40).collect()));
    };
    let Some(close) = body.find(')') else {
        return Some(Err(rest.chars().take(40).collect()));
    };
    let mut rules = Vec::new();
    for part in body[..close].split(',') {
        match Rule::parse(part) {
            Some(r) => rules.push(r),
            None => return Some(Err(part.trim().to_string())),
        }
    }
    if rules.is_empty() {
        return Some(Err("allow()".to_string()));
    }
    // The reason follows a separator: em-dash, en-dash, hyphen, or colon.
    let tail = body[close + 1..].trim_start();
    let reason = tail
        .strip_prefix('—')
        .or_else(|| tail.strip_prefix('–'))
        .or_else(|| tail.strip_prefix('-'))
        .or_else(|| tail.strip_prefix(':'))
        .map(str::trim)
        .unwrap_or("")
        .to_string();
    Some(Ok(Pragma { rules, reason, trailing: has_code }))
}

// ---------------------------------------------------------------------------
// Token matching.
// ---------------------------------------------------------------------------

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// True when `token` occurs in `line` at identifier boundaries. Tokens may
/// contain `::` path segments; boundaries are checked at both ends (a
/// preceding `::` is a boundary — `std::collections::` prefixes must still
/// match the bare type token).
fn has_token(line: &str, token: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = line[from..].find(token) {
        let start = from + pos;
        let end = start + token.len();
        let before_ok =
            start == 0 || !is_ident_char(line[..start].chars().next_back().unwrap_or(' '));
        let after_ok = !line[end..].starts_with(is_ident_char);
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

/// True when `name` occurs in `line` as a macro invocation: at an
/// identifier boundary on the left, immediately followed by `!`.
fn has_macro(line: &str, name: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = line[from..].find(name) {
        let start = from + pos;
        let end = start + name.len();
        let before_ok =
            start == 0 || !is_ident_char(line[..start].chars().next_back().unwrap_or(' '));
        if before_ok && line[end..].starts_with('!') {
            return true;
        }
        from = end;
    }
    false
}

/// D1 tokens: the std hash collections (every path form mentions the bare
/// type name, so matching the type identifier covers imports, annotations,
/// turbofish, and constructor calls alike).
const D1_TOKENS: [&str; 2] = ["HashMap", "HashSet"];

/// D2 tokens: wall-clock reads and their imports.
const D2_TOKENS: [&str; 4] =
    ["Instant::now", "SystemTime::now", "std::time::Instant", "std::time::SystemTime"];

/// D3 tokens: ambient RNG sources (entropy-seeded or process-shared — the
/// draws that are *not* pure functions of a config seed).
const D3_TOKENS: [&str; 3] = ["thread_rng", "from_entropy", "rand::random"];

/// D5 tokens: direct stdout/stderr prints. Only the bang forms are
/// watched — `writeln!` into a `String` is the sanctioned idiom.
const D5_TOKENS: [&str; 3] = ["println", "eprintln", "dbg"];

/// True when D5 (no library prints) applies to `path`: anything *not*
/// reachable from a binary/test/example/bench entry point. The check is
/// purely lexical over the path the scanner was handed — `bin`, `tests`,
/// `examples`, and `benches` components mark allowlisted trees, and
/// `main.rs`/`build.rs` are entry points wherever they live.
pub fn d5_applies(path: &Path) -> bool {
    let exempt_component = path
        .components()
        .any(|c| matches!(c.as_os_str().to_str(), Some("bin" | "tests" | "examples" | "benches")));
    let exempt_file =
        matches!(path.file_name().and_then(|n| n.to_str()), Some("main.rs" | "build.rs"));
    !exempt_component && !exempt_file
}

/// D6 types: query-path routing state that consumers borrow or hold by
/// interned index — a `.clone()` of a binding of one of these types in
/// library code is a per-query allocation regression. (`NetModelKind` is
/// `Copy`, so only the full `NetModel` — with its latency tables — is
/// watched.)
const D6_TYPES: [&str; 3] = ["FaultPlan", "NetModel", "KautzRegion"];

/// True when D6 (no routing-state clones) applies to `path`: the same
/// library-only allowlist as [`d5_applies`] — binaries, tests, examples,
/// and benches set up owned fixtures and may clone freely.
pub fn d6_applies(path: &Path) -> bool {
    d5_applies(path)
}

/// Unordered-iteration method calls D4 watches on hash-bound names.
const D4_METHODS: [&str; 9] = [
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_keys()",
    ".into_values()",
    ".drain(",
    ".iter()",
    ".iter_mut()",
    ".into_iter()",
];

/// How many lines below an unordered iteration a `sort` still counts as
/// "intervening" (covers the collect-into-vec-then-sort idiom).
const D4_SORT_WINDOW: usize = 4;

/// Extracts the names bound to any of `types` in this file: `let`
/// bindings and struct-field / parameter declarations whose line names
/// one of the watched types. Shared by D4 (hash collections) and D6
/// (routing state).
fn bound_names(lines: &[SplitLine], types: &[&str]) -> Vec<String> {
    let mut names = Vec::new();
    for l in lines {
        let code = &l.code;
        if !types.iter().any(|t| has_token(code, t)) {
            continue;
        }
        // `let [mut] name[: T] = …` — the binding introduced on this line.
        if let Some(pos) = code.find("let ") {
            let rest = code[pos + 4..].trim_start().trim_start_matches("mut ").trim_start();
            let name: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
            if !name.is_empty() && !names.contains(&name) {
                names.push(name);
            }
            continue;
        }
        // `name: …Hash…<…>` — a struct field (or fn param) declaration.
        if let Some(colon) = code.find(':') {
            let rev: String =
                code[..colon].chars().rev().take_while(|&c| is_ident_char(c)).collect();
            let name: String = rev.chars().rev().collect();
            if !name.is_empty()
                && !name.starts_with(|c: char| c.is_ascii_digit())
                && !names.contains(&name)
            {
                names.push(name);
            }
        }
    }
    names
}

/// The watched call `line` makes on `name` (or `self.name`), if any: an
/// unordered-iteration method, or a `for … in` over it.
fn iterates_unordered(line: &str, name: &str) -> Option<String> {
    for recv in [format!("self.{name}"), name.to_string()] {
        for m in D4_METHODS {
            let call = format!("{recv}{m}");
            if line.contains(&call) {
                return Some(call);
            }
        }
        if let Some(pos) = find_for_in(line) {
            let target = line[pos..].trim_start();
            let target = target.strip_prefix('&').unwrap_or(target);
            let target = target.strip_prefix("mut ").unwrap_or(target).trim_start();
            if target.starts_with(&recv)
                && !target[recv.len()..].starts_with(is_ident_char)
                && !target[recv.len()..].starts_with('.')
            {
                return Some(format!("for … in {recv}"));
            }
        }
    }
    None
}

/// Position just after the ` in ` of a `for … in …` header, if present.
fn find_for_in(line: &str) -> Option<usize> {
    let for_at = line.find("for ")?;
    let in_at = line[for_at..].find(" in ")?;
    Some(for_at + in_at + 4)
}

// ---------------------------------------------------------------------------
// Scanning.
// ---------------------------------------------------------------------------

/// Scans one source text. `path` labels the findings; no I/O happens here.
pub fn scan_source(path: &Path, text: &str) -> (Vec<Finding>, Vec<Allowance>) {
    let lines = split_lines(text);
    let raw_lines: Vec<&str> = text.lines().collect();
    let snippet = |idx: usize| raw_lines.get(idx).map_or(String::new(), |s| s.trim().to_string());

    // Pass 1: pragmas. `covers[i]` holds the (rule, reason) pairs that
    // suppress findings on line i (0-based).
    let mut covers: Vec<Vec<(Rule, String)>> = vec![Vec::new(); lines.len()];
    let mut findings = Vec::new();
    for (i, l) in lines.iter().enumerate() {
        let has_code = !l.code.trim().is_empty();
        match parse_pragma(&l.comment, has_code) {
            None => {}
            Some(Err(token)) => findings.push(Finding {
                file: path.to_path_buf(),
                line: i + 1,
                rule: Rule::BadPragma,
                token,
                snippet: snippet(i),
            }),
            Some(Ok(p)) => {
                if p.reason.is_empty() {
                    // A reasonless pragma suppresses nothing and is itself
                    // reported — an unexplained exception is no audit.
                    findings.push(Finding {
                        file: path.to_path_buf(),
                        line: i + 1,
                        rule: Rule::BadPragma,
                        token: "allow without reason".to_string(),
                        snippet: snippet(i),
                    });
                    continue;
                }
                let target = if p.trailing {
                    Some(i)
                } else {
                    // Standalone pragma: covers the next line with code.
                    (i + 1..lines.len()).find(|&j| !lines[j].code.trim().is_empty())
                };
                if let Some(t) = target {
                    for r in &p.rules {
                        covers[t].push((*r, p.reason.clone()));
                    }
                }
            }
        }
    }

    // Pass 2: rule tokens on the stripped code.
    let bound = bound_names(&lines, &D1_TOKENS);
    let routing_bound =
        if d6_applies(path) { bound_names(&lines, &D6_TYPES) } else { Vec::new() };
    let mut allowed = Vec::new();
    let mut emit = |line_idx: usize, rule: Rule, token: String, findings: &mut Vec<Finding>| {
        if let Some((_, reason)) = covers[line_idx].iter().find(|(r, _)| *r == rule) {
            allowed.push(Allowance {
                file: path.to_path_buf(),
                line: line_idx + 1,
                rule,
                reason: reason.clone(),
            });
        } else {
            findings.push(Finding {
                file: path.to_path_buf(),
                line: line_idx + 1,
                rule,
                token,
                snippet: snippet(line_idx),
            });
        }
    };

    for (i, l) in lines.iter().enumerate() {
        let code = &l.code;
        for t in D1_TOKENS {
            if has_token(code, t) {
                emit(i, Rule::D1, t.to_string(), &mut findings);
            }
        }
        for t in D2_TOKENS {
            if has_token(code, t) {
                // One finding per line: the path tokens overlap (a
                // `std::time::Instant::now()` call matches two of them).
                emit(i, Rule::D2, t.to_string(), &mut findings);
                break;
            }
        }
        for t in D3_TOKENS {
            if has_token(code, t) {
                emit(i, Rule::D3, t.to_string(), &mut findings);
            }
        }
        if d5_applies(path) {
            for t in D5_TOKENS {
                // The macro invocation, not the bare name: `println` as an
                // identifier (a local, a field) is not a print.
                if has_macro(code, t) {
                    emit(i, Rule::D5, format!("{t}!"), &mut findings);
                }
            }
        }
        for name in &bound {
            if let Some(call) = iterates_unordered(code, name) {
                // An intervening sort within the window discharges D4: the
                // unordered stream was canonicalized before flowing on.
                let sorted_after = (i..lines.len().min(i + 1 + D4_SORT_WINDOW))
                    .any(|j| lines[j].code.contains("sort"));
                if !sorted_after {
                    emit(i, Rule::D4, call, &mut findings);
                }
                break; // one D4 finding per line
            }
        }
        for name in &routing_bound {
            // `plan.clone()` / `p.plan.clone()` / `self.plan.clone()` — the
            // boundary check rejects longer identifiers (`replan.clone()`)
            // while any field access prefix still matches.
            let call = format!("{name}.clone()");
            if has_token(code, &call) {
                emit(i, Rule::D6, call, &mut findings);
                break; // one D6 finding per line
            }
        }
    }

    findings.sort_by_key(|a| (a.line, a.rule));
    (findings, allowed)
}

/// Scans every `.rs` file under `root` (recursively), excluding `target/`
/// directories. Use this for fixture or single-crate runs.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn scan_dir(root: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    collect_rs(root, &mut files, &|_| true)?;
    scan_files(root, files)
}

/// Scans the workspace tree rooted at `root`: `crates/`, `src/`, `tests/`,
/// and `examples/`, excluding `shims/` (offline stand-ins for external
/// crates, not simulation code) and the linter's own seeded-violation
/// fixtures.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn scan_workspace(root: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    for dir in ["crates", "src", "tests", "examples"] {
        let d = root.join(dir);
        if d.is_dir() {
            collect_rs(&d, &mut files, &|p| !p.components().any(|c| c.as_os_str() == "fixtures"))?;
        }
    }
    scan_files(root, files)
}

fn scan_files(root: &Path, mut files: Vec<PathBuf>) -> std::io::Result<Report> {
    files.sort();
    let mut report = Report::default();
    for f in &files {
        let text = std::fs::read_to_string(f)?;
        let label = f.strip_prefix(root).unwrap_or(f);
        let (findings, allowed) = scan_source(label, &text);
        report.findings.extend(findings);
        report.allowed.extend(allowed);
        report.files_scanned += 1;
    }
    Ok(report)
}

fn collect_rs(
    dir: &Path,
    out: &mut Vec<PathBuf>,
    keep: &dyn Fn(&Path) -> bool,
) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name != "target" && keep(&path) {
                collect_rs(&path, out, keep)?;
            }
        } else if name.ends_with(".rs") && keep(&path) {
            out.push(path);
        }
    }
    Ok(())
}

/// The workspace root as seen from this crate (`crates/detlint` → `../..`).
pub fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(text: &str) -> (Vec<Finding>, Vec<Allowance>) {
        scan_source(Path::new("test.rs"), text)
    }

    #[test]
    fn comments_and_strings_do_not_fire() {
        let text = r##"
// a HashMap here made crashed_nodes() run-dependent
/* block comment: HashSet, Instant::now, thread_rng */
let s = "HashMap in a string";
let r = r#"HashSet raw "quoted" string"#;
let t = 'x';
"##;
        let (findings, _) = scan(text);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn nested_block_comments_and_lifetimes_survive() {
        let text = "/* outer /* inner HashMap */ still comment HashSet */\n\
                    fn f<'a>(x: &'a u32) -> &'a u32 { x }\n";
        let (findings, _) = scan(text);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn d1_fires_on_import_annotation_and_constructor() {
        let text = "use std::collections::HashMap;\n\
                    let x: HashSet<u32> = Default::default();\n\
                    let y = std::collections::HashMap::<u8, u8>::new();\n";
        let (findings, _) = scan(text);
        let d1: Vec<_> = findings.iter().filter(|f| f.rule == Rule::D1).collect();
        assert_eq!(d1.len(), 3, "{findings:?}");
        assert_eq!(d1[0].line, 1);
        assert_eq!(d1[1].line, 2);
        assert_eq!(d1[2].line, 3);
    }

    #[test]
    fn d1_does_not_fire_on_lookalike_identifiers() {
        let text = "struct MyHashMapLike;\nlet no_hash_set_here = 1;\n";
        let (findings, _) = scan(text);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn d2_fires_once_per_line() {
        let text = "use std::time::Instant;\nlet t = Instant::now();\n\
                    let s = std::time::SystemTime::now();\n";
        let (findings, _) = scan(text);
        let d2: Vec<_> = findings.iter().filter(|f| f.rule == Rule::D2).collect();
        assert_eq!(d2.len(), 3, "{findings:?}");
    }

    #[test]
    fn d3_fires_on_ambient_rng() {
        let text = "let mut rng = thread_rng();\nlet x: u64 = rand::random();\n\
                    let r = SmallRng::from_entropy();\n";
        let (findings, _) = scan(text);
        assert_eq!(findings.iter().filter(|f| f.rule == Rule::D3).count(), 3, "{findings:?}");
    }

    #[test]
    fn d4_flags_unordered_iteration_on_hash_bound_names() {
        let text = "let mut groups: std::collections::HashMap<u64, u32> = Default::default();\n\
                    for v in groups.values() {\n\
                    }\n";
        let (findings, _) = scan(text);
        let d4: Vec<_> = findings.iter().filter(|f| f.rule == Rule::D4).collect();
        assert_eq!(d4.len(), 1, "{findings:?}");
        assert_eq!(d4[0].line, 2);
        assert!(d4[0].token.contains("values"));
    }

    #[test]
    fn d4_credits_an_intervening_sort() {
        let text = "let mut groups: std::collections::HashMap<u64, u32> = Default::default();\n\
                    let mut out: Vec<_> = groups.keys().collect();\n\
                    out.sort_unstable();\n";
        let (findings, _) = scan(text);
        assert!(findings.iter().all(|f| f.rule != Rule::D4), "{findings:?}");
    }

    #[test]
    fn d4_tracks_struct_fields_through_self() {
        let text = "struct S {\n    index: std::collections::HashMap<u64, u32>,\n}\n\
                    impl S {\n    fn f(&self) -> usize {\n        \
                    self.index.values().map(|v| *v as usize).max().unwrap_or(0)\n    }\n}\n";
        let (findings, _) = scan(text);
        let d4: Vec<_> = findings.iter().filter(|f| f.rule == Rule::D4).collect();
        assert_eq!(d4.len(), 1, "{findings:?}");
        assert!(d4[0].token.starts_with("self.index"));
    }

    #[test]
    fn d5_fires_in_library_paths_and_not_in_entry_point_paths() {
        let text = "fn f() {\n    println!(\"x\");\n    eprintln!(\"y\");\n    dbg!(1);\n}\n";
        let (findings, _) = scan_source(Path::new("crates/foo/src/lib.rs"), text);
        assert_eq!(findings.iter().filter(|f| f.rule == Rule::D5).count(), 3, "{findings:?}");
        // Entry points and test/example trees are allowlisted by path.
        for exempt in [
            "crates/foo/src/bin/tool.rs",
            "crates/foo/src/main.rs",
            "crates/foo/tests/integration.rs",
            "examples/quickstart.rs",
            "crates/foo/benches/bench.rs",
            "build.rs",
        ] {
            let (findings, _) = scan_source(Path::new(exempt), text);
            assert!(findings.is_empty(), "{exempt}: {findings:?}");
        }
    }

    #[test]
    fn d5_matches_the_macro_not_the_identifier() {
        let text = "let println = 3;\nlet x = a != b;\nwriteln!(s, \"ok\").unwrap();\n\
                    my_println!(\"custom macro\");\n";
        let (findings, _) = scan_source(Path::new("crates/foo/src/lib.rs"), text);
        assert!(findings.iter().all(|f| f.rule != Rule::D5), "{findings:?}");
    }

    #[test]
    fn trailing_and_standalone_pragmas_cover_their_lines() {
        let text = "use std::collections::HashMap; // detlint: allow(D1) — audited: keys \
                    sorted on read\n\
                    // detlint: allow(D1) — audited: value type only\n\
                    fn f(m: &HashMap<u8, u8>) {}\n";
        let (findings, allowed) = scan(text);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(allowed.len(), 2);
        assert!(allowed[0].reason.contains("keys sorted"));
    }

    #[test]
    fn reasonless_or_malformed_pragmas_are_reported_and_do_not_suppress() {
        let text = "use std::collections::HashSet; // detlint: allow(D1)\n\
                    // detlint: allow(D9) — no such rule\n";
        let (findings, allowed) = scan(text);
        assert!(allowed.is_empty());
        assert_eq!(findings.iter().filter(|f| f.rule == Rule::BadPragma).count(), 2);
        // The reasonless pragma left the D1 finding standing.
        assert_eq!(findings.iter().filter(|f| f.rule == Rule::D1).count(), 1);
    }

    #[test]
    fn pragma_only_covers_its_named_rule() {
        let text = "// detlint: allow(D2) — wrong rule named\n\
                    use std::collections::HashMap;\n";
        let (findings, _) = scan(text);
        assert_eq!(findings.iter().filter(|f| f.rule == Rule::D1).count(), 1, "{findings:?}");
    }

    #[test]
    fn prose_mentioning_the_grammar_is_not_a_pragma() {
        // A doc comment *about* pragmas must neither suppress nor trip the
        // hygiene rule — only a comment that starts with the marker parses.
        let text = "/// Suppress with a trailing comment per the detlint: allow grammar.\n\
                    fn documented() {}\n";
        let (findings, allowed) = scan(text);
        assert!(findings.is_empty(), "{findings:?}");
        assert!(allowed.is_empty());
    }

    #[test]
    fn fixture_violations_all_fire() {
        let report = scan_dir(&PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures"))
            .expect("fixtures scan");
        // Every rule of the contract fires at least once in the fixture —
        // the linter is itself tested before it is trusted as a CI gate.
        for rule in RULES {
            assert!(
                !report.findings_for(rule).is_empty(),
                "rule {rule} found nothing in the fixtures"
            );
        }
        assert!(!report.is_clean());
        // The audited (pragma'd) seeds landed in the allowance list, one
        // per rule, instead of failing the scan.
        for rule in RULES {
            assert!(
                report.allowed.iter().any(|a| a.rule == rule),
                "rule {rule} has no audited exception in the fixtures"
            );
        }
        // And the clean fixture contributes nothing.
        assert!(
            !report.findings.iter().any(|f| f.file.ends_with("clean.rs")),
            "clean.rs must stay clean: {:?}",
            report.findings
        );
    }

    #[test]
    fn fixture_expected_counts_are_exact() {
        let report = scan_dir(&PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures"))
            .expect("fixtures scan");
        let seeded = |rule: Rule| report.findings_for(rule).len();
        // Kept in lockstep with fixtures/seeded_violations.rs.
        assert_eq!(seeded(Rule::D1), 3, "{:?}", report.findings_for(Rule::D1));
        assert_eq!(seeded(Rule::D2), 3, "{:?}", report.findings_for(Rule::D2));
        assert_eq!(seeded(Rule::D3), 3, "{:?}", report.findings_for(Rule::D3));
        assert_eq!(seeded(Rule::D4), 3, "{:?}", report.findings_for(Rule::D4));
        assert_eq!(seeded(Rule::D5), 3, "{:?}", report.findings_for(Rule::D5));
        assert_eq!(seeded(Rule::D6), 3, "{:?}", report.findings_for(Rule::D6));
        assert_eq!(seeded(Rule::BadPragma), 2, "{:?}", report.findings_for(Rule::BadPragma));
        assert_eq!(report.allowed.len(), 6, "{:?}", report.allowed);
    }

    #[test]
    fn workspace_tree_is_clean() {
        // The CI gate, enforced from the test suite too: the real tree has
        // no unannotated violation of the determinism contract.
        let report = scan_workspace(&workspace_root()).expect("workspace scan");
        assert!(report.files_scanned > 50, "scanned only {} files", report.files_scanned);
        assert!(report.is_clean(), "determinism contract violations:\n{}", report.to_text());
        // The audit trail is present: baseline.rs's qps stopwatch is the
        // canonical D2 allowance.
        assert!(
            report
                .allowed
                .iter()
                .any(|a| a.rule == Rule::D2 && a.file.to_string_lossy().contains("baseline")),
            "the baseline qps stopwatch allowance went missing"
        );
    }

    #[test]
    fn json_report_is_balanced_and_names_rules() {
        let (findings, allowed) = scan("use std::collections::HashMap;\nlet t = Instant::now();\n");
        let report = Report { findings, allowed, files_scanned: 1 };
        let json = report.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"rule\": \"D1\""));
        assert!(json.contains("\"rule\": \"D2\""));
        assert!(json.contains("\"clean\": false"));
    }
}
