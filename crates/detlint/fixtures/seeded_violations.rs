// Seeded violations for detlint's self-test. This file is never compiled —
// it is scanned by `cargo test -p detlint` and by the CI fixture gate
// (which asserts that detlint exits non-zero here). The per-rule counts
// are pinned by `fixture_expected_counts_are_exact`: D1=3, D2=3, D3=3,
// D4=3, D5=3, D6=3, bad pragmas=2, audited allowances=6 (one per rule).

// --- D1/D2 imports --------------------------------------------------------

use std::collections::HashMap;
use std::time::Instant;

// --- D2: wall-clock reads -------------------------------------------------

fn wall_clock_reads() -> u64 {
    let t0 = Instant::now();
    let boot = std::time::SystemTime::now();
    t0.elapsed().as_nanos() as u64 ^ boot.elapsed().unwrap().as_nanos() as u64
}

// --- D3: ambient randomness -----------------------------------------------

fn ambient_randomness() -> u64 {
    let mut rng = thread_rng();
    let stream = SmallRng::from_entropy();
    let jitter: u64 = rand::random();
    rng.gen::<u64>() ^ stream.gen::<u64>() ^ jitter
}

// --- D1 + D4: hash state leaking iteration order --------------------------

fn order_leaks() -> Vec<u64> {
    let mut m: HashMap<u64, u64> = HashMap::new();
    m.insert(1, 2);
    let seen: std::collections::HashSet<u64> = Default::default(); // detlint: allow(D1)
    let mut out = Vec::new();
    for k in m.keys() {
        out.push(*k);
    }
    for v in seen.iter() {
        out.push(*v);
    }
    let total: u64 = m.values().sum();
    out.push(total);
    out
}

// --- D5: stdout/stderr prints in library code -----------------------------

fn library_prints(progress: usize) {
    println!("progress: {progress}");
    eprintln!("warning: still running");
    let _peeked = dbg!(progress * 2);
}

// --- D6: cloning query-path routing state ---------------------------------

fn routing_state_clones(
    plan: &FaultPlan,
    model: &NetModel,
    region: &KautzRegion,
) -> u64 {
    let owned_plan = plan.clone();
    let owned_model = model.clone();
    let sub = region.clone();
    owned_plan.len() as u64 ^ owned_model.seed() ^ sub.depth() as u64
}

// --- audited exceptions: reasoned pragmas become allowances ---------------

// detlint: allow(D1) — audited: map is read only through a sorted key list
fn audited_len(names: &HashMap<u64, u64>) -> usize {
    names.len()
}

fn audited_sites() {
    let _t = Instant::now(); // detlint: allow(D2) — audited: fixture stopwatch, result discarded
    let _r = thread_rng(); // detlint: allow(D3) — audited: fixture only, never a delivery path
    let _n = m.values().count(); // detlint: allow(D4) — audited: count() is order-insensitive
    println!("done"); // detlint: allow(D5) — audited: fixture CLI epilogue, not a report path
    let _p = plan.clone(); // detlint: allow(D6) — audited: per-run worker handoff, not per-query
}

// --- negative case: an intervening sort discharges D4 ---------------------

fn canonical_keys_are_fine() -> Vec<u64> {
    let mut ks: Vec<u64> = m.keys().copied().collect();
    ks.sort_unstable();
    ks
}

// detlint: forbid(D1) — not a verb the grammar knows
