// The deterministic counterpart of seeded_violations.rs: the same shapes
// written the way the contract demands. detlint must report nothing here —
// `fixture_violations_all_fire` asserts this file contributes no findings.

use std::collections::BTreeMap;

fn simulated_clock(seed: u64, tick: u64) -> u64 {
    // Time is simulation state, not a wall-clock read.
    seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(tick)
}

fn seeded_randomness(seed: u64, index: u64) -> u64 {
    // Randomness is a pure function of (seed, index) — splitmix64.
    let mut z = seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn ordered_iteration(m: &BTreeMap<u64, u64>) -> Vec<u64> {
    // BTreeMap iterates in key order: nothing to canonicalize.
    m.values().copied().collect()
}

fn canonicalized(samples: &[u64]) -> Vec<u64> {
    let mut out: Vec<u64> = samples.to_vec();
    out.sort_unstable();
    out
}
