//! Offline drop-in subset of the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the slice of
//! proptest this workspace's property tests use is reimplemented here:
//! random-sampling strategies without shrinking. Covered API:
//!
//! * [`Strategy`] with [`Strategy::prop_map`]; ranges, tuples, [`Just`],
//!   [`collection::vec`], [`prop_oneof!`] and [`arbitrary::any`] as sources.
//! * The [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//!   [`prop_assert!`] / [`prop_assert_eq!`], and [`ProptestConfig`].
//!
//! Failures report the case number; reproduce by rerunning the test (case
//! generation is deterministic per test name).
//!
//! # This is not the real `proptest`
//!
//! Contributor notes: the headline difference is **no shrinking** — a
//! failing case is reported as-is rather than minimized, so keep generated
//! inputs small where you can. There is also no persistent failure file
//! and no `prop_filter`/recursive strategies. Extend this shim with the
//! real crate's signatures if a property needs more surface; the macros
//! are source-compatible with the real `proptest!` for everything the
//! workspace uses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::{Rng, Standard};
use std::ops::{Range, RangeInclusive};

/// Runner configuration: number of random cases per property.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of type [`Strategy::Value`].
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// `any::<T>()` support.
pub mod arbitrary {
    use super::*;
    use std::marker::PhantomData;

    /// Uniform strategy over a type's whole domain.
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<T>);

    /// Uniform strategy over the whole domain of `T`.
    pub fn any<T: Standard>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Standard> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut SmallRng) -> T {
            rng.gen()
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::*;

    /// Strategy for `Vec`s with random length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A `Vec` strategy: elements from `element`, length uniform in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Weighted-choice strategy behind [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` options.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty or all weights are zero.
    pub fn new_weighted(options: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        let total: u64 = options.iter().map(|&(w, _)| u64::from(w)).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut SmallRng) -> T {
        let total: u64 = self.options.iter().map(|&(w, _)| u64::from(w)).sum();
        let mut pick = rng.gen_range(0..total);
        for (w, s) in &self.options {
            if pick < u64::from(*w) {
                return s.sample(rng);
            }
            pick -= u64::from(*w);
        }
        unreachable!("weights sum to total")
    }
}

/// Error a property body can return early (mirrors proptest's type).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic per-test RNG stream: hash the test name, offset by case.
pub fn case_rng(test_name: &str, case: u32) -> SmallRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in test_name.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    use rand::SeedableRng;
    SmallRng::seed_from_u64(h ^ (u64::from(case) << 32))
}

/// The common import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };

    /// Mirrors `proptest::prelude::prop` (module-style access).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Weighted choice of strategies: `prop_oneof![3 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {{
        let mut options: Vec<(u32, Box<dyn $crate::Strategy<Value = _>>)> = Vec::new();
        $(options.push(($weight, Box::new($strategy)));)+
        $crate::Union::new_weighted(options)
    }};
    ($($strategy:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strategy),+]
    };
}

/// Defines property tests: each `#[test] fn name(pat in strategy, ..)` runs
/// `cases` times over freshly sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    (@cfg ($config:expr) $(
        #[test]
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut proptest_case_rng = $crate::case_rng(stringify!($name), case);
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut proptest_case_rng);)+
                // Bodies may `return Err(TestCaseError)` / use `?`; surface
                // those as ordinary test panics with the case number.
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let Err(e) = outcome {
                    panic!("property {} failed at case {case}: {e}", stringify!($name));
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}
