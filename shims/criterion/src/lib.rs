//! Offline drop-in subset of the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so the criterion API
//! surface the workspace's benches use is reimplemented here: it times each
//! benchmark over a fixed warm-up plus measured pass and prints a mean
//! per-iteration figure. No statistical analysis, plotting, or baselines —
//! just honest wall-clock numbers so `cargo bench` keeps working offline.
//!
//! # This is not the real `criterion`
//!
//! Contributor notes: there is no outlier rejection, no confidence
//! interval, no HTML report, and no `--save-baseline` — treat the printed
//! mean as a smoke-level signal, not a publishable measurement. The
//! durable perf trajectory for this repo is the `bench_baseline` binary in
//! `armada-experiments`, which persists `BENCH_baseline.json` with
//! seed-deterministic simulated metrics next to wall-clock throughput.
//! Extend this shim only with API the real criterion has (same
//! signatures), so benches stay portable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier of one parameterised benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }

    /// An id carrying just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Drives closures under measurement (`b.iter(..)`).
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, first warming up briefly, then measuring.
    // Wall-clock is this shim's whole job (real criterion's stopwatch is
    // wall-clock too); it never runs on a simulation or report path, and
    // detlint excludes `shims/` for the same reason.
    #[allow(clippy::disallowed_methods)]
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until ~50ms or 10 iterations, whichever first.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_iters < 10 && warm_start.elapsed() < Duration::from_millis(50) {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;
        // Target ~200ms of measurement, clamped to a sane iteration count.
        let target = Duration::from_millis(200);
        let iters = if per_iter.is_zero() {
            1000
        } else {
            (target.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 100_000) as u64
        };
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iterations = iters;
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

fn run_one(name: &str, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher { iterations: 0, elapsed: Duration::ZERO };
    f(&mut b);
    let mean = if b.iterations == 0 { Duration::ZERO } else { b.elapsed / b.iterations as u32 };
    println!("{name:<40} {:>12}/iter ({} iters)", fmt_duration(mean), b.iterations);
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Sets the sample count (accepted for API compatibility; ignored).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benches `f` with an input value under the given id.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, |b| f(b, input));
        self
    }

    /// Benches `f` under the given id.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, &mut f);
        self
    }

    /// Finishes the group (no-op; reporting is incremental).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Benches a single function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, &mut f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
