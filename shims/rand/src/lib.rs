//! Offline drop-in subset of the `rand` crate (v0.8 API surface).
//!
//! The build environment for this workspace has no access to crates.io, so
//! the subset of `rand` the suite actually uses is reimplemented here as a
//! path dependency with the same package name. Covered API:
//!
//! * [`rngs::SmallRng`] — xoshiro256++ (the same family the real `SmallRng`
//!   uses on 64-bit targets), seeded via SplitMix64.
//! * [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_seed`].
//! * [`Rng::gen`], [`Rng::gen_range`] (half-open and inclusive ranges over
//!   the primitive integers up to `u128` and `f32`/`f64`), and
//!   [`Rng::gen_bool`].
//!
//! Determinism is part of the contract: a given seed reproduces the same
//! stream on every platform, which the experiment harness relies on.
//!
//! # This is not the real `rand`
//!
//! Contributor notes:
//!
//! * Anything outside the API above (`thread_rng`, distributions beyond
//!   `Standard`/ranges, `choose`/`shuffle`, other RNG cores) is simply
//!   absent — add it here if a new test needs it, keeping the real crate's
//!   v0.8 signatures so a future swap back to crates.io is a
//!   `Cargo.toml`-only change.
//! * Do **not** "fix" the generator: seeds are baked into committed
//!   experiment outputs (`BENCH_baseline.json`, figure CSVs), so changing
//!   the stream invalidates every committed number at once.
//! * The package name matches crates.io's `rand` deliberately — workspace
//!   crates depend on it by path (see the root `Cargo.toml`) and their
//!   `use rand::…` lines stay portable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator core: the only primitive is a 64-bit draw.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Values samplable uniformly over their whole domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws a uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges samplable uniformly (`rng.gen_range(..)`).
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing generator methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniform value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a uniform value from a half-open or inclusive range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0; 4] {
                // The all-zero state is a fixed point; nudge it.
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            SmallRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 significant bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for i128 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

macro_rules! sample_int_range {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as $wide).wrapping_sub(self.start as $wide) as u128;
                let draw = u128::sample(rng) % width;
                (self.start as $wide).wrapping_add(draw as $wide) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as $wide).wrapping_sub(lo as $wide) as u128;
                if width == u128::MAX {
                    return u128::sample(rng) as $t;
                }
                let draw = u128::sample(rng) % (width + 1);
                (lo as $wide).wrapping_add(draw as $wide) as $t
            }
        }
    )*};
}
sample_int_range!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, u128 => u128, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, i128 => u128, isize => usize
);

macro_rules! sample_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                loop {
                    let u = <$t as Standard>::sample(rng);
                    let v = self.start + u * (self.end - self.start);
                    // Floating-point rounding can land exactly on `end`;
                    // redraw to honour the half-open contract.
                    if v < self.end {
                        return v;
                    }
                }
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng);
                (lo + u * (hi - lo)).min(hi)
            }
        }
    )*};
}
sample_float_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(3.0..5.0);
            assert!((3.0..5.0).contains(&v));
            let w: f64 = rng.gen_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn int_ranges_cover_uniformly() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {c}");
        }
        for _ in 0..1000 {
            let v = rng.gen_range(5u64..=5);
            assert_eq!(v, 5);
            let w: u128 = rng.gen_range(0..(1u128 << 100));
            assert!(w < (1u128 << 100));
        }
    }

    #[test]
    fn float_sample_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = SmallRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits {hits}");
    }
}
