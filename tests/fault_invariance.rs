//! Loss-determinism property test: hostile-network verdicts are pure
//! hashes, so every faulted report must be bitwise identical across
//! worker thread counts and shard-submission salts — for every registered
//! scheme, at several seeds, under loss and partition plans alike.
//!
//! This is the hostile layer's counterpart of `parallel_determinism.rs`:
//! a loss verdict driven by anything ambient (retry counters shared
//! across threads, wall-clock timeouts, iteration order of a fault set)
//! would shard-split differently at different thread counts and move the
//! digest. The battery also pins the retry *trace* — messages and
//! virtual-ms latency, where timeouts and backoff are priced — and the
//! wrap-time rejection of fault plans that name peers outside the
//! scheme's id space.

use armada_suite::dht_api::{
    BuildParams, ChurnPlan, DigestReport, Hostile, ParallelDriver, RangeScheme, RetryPolicy,
    SchemeError, WorkloadGen,
};
use armada_suite::experiments::{dynamic_single_names, standard_registry};
use armada_suite::rand::Rng;
use simnet::FaultPlan;

const DOMAIN: (f64, f64) = (0.0, 1000.0);
const N: usize = 100;
const BATCH_QUERIES: usize = 12;
const EPOCH_QUERIES: usize = 10;
const EPOCHS: usize = 4;

/// Seeds each scheme × plan cell is digested at — the invariance must
/// hold pointwise, not just for one lucky seed.
const SEEDS: [u64; 3] = [7, 0x5eed, 0xbad_5eed];

/// Shard-submission salts (0 = natural order).
const SALTS: [u64; 2] = [0x5eed, 0xfeed_face_0ca1];

fn build(name: &str) -> Box<dyn RangeScheme> {
    let registry = standard_registry();
    let params = BuildParams::new(N, DOMAIN.0, DOMAIN.1).with_object_id_len(32);
    let mut rng = simnet::rng_from_seed(0x0ca9_a817);
    let mut scheme = registry.build_single(name, &params, &mut rng).expect("scheme builds");
    for h in 0..N as u64 {
        scheme.publish(rng.gen_range(DOMAIN.0..=DOMAIN.1), h).expect("publish");
    }
    scheme
}

/// Batch digest under a hostile suffix. The scheme is rebuilt per call so
/// no state (not even a benign cache) can leak between runs.
fn batch_digest(name: &str, seed: u64, threads: usize, salt: u64) -> DigestReport {
    let scheme = build(name);
    let workload = WorkloadGen::named("mixed", DOMAIN).expect("cataloged");
    let driver =
        ParallelDriver { queries: BATCH_QUERIES, seed, threads, shard_salt: salt, metrics: false };
    DigestReport::of(&driver.run(scheme.as_ref(), &workload).expect("faulted queries degrade"))
}

/// Epoch-driven digest under a hostile suffix (partitions traverse their
/// open/heal schedule; membership stays frozen so the faults are the only
/// signal).
fn epoch_digest(name: &str, seed: u64, threads: usize, salt: u64) -> DigestReport {
    let mut scheme = build(name);
    let workload = WorkloadGen::named("uniform", DOMAIN).expect("cataloged");
    let plan = ChurnPlan::named("steady-churn").expect("cataloged").with_rate(0);
    let driver =
        ParallelDriver { queries: EPOCH_QUERIES, seed, threads, shard_salt: salt, metrics: false };
    DigestReport::of(
        &driver.run_epochs(scheme.as_mut(), &workload, &plan, EPOCHS).expect("epoch run"),
    )
}

/// The invariance harness: a single-threaded natural-order reference,
/// compared against 4 workers under every shard salt, at every seed.
fn assert_thread_invariant(
    label: &str,
    name: &str,
    digest: fn(&str, u64, usize, u64) -> DigestReport,
) {
    for &seed in &SEEDS {
        let reference = digest(name, seed, 1, 0);
        for &salt in &SALTS {
            for threads in [1usize, 4] {
                let d = digest(name, seed, threads, salt);
                assert_eq!(
                    d, reference,
                    "{label}/{name}: digest moved (seed {seed:#x}, salt {salt:#x}, \
                     threads {threads})"
                );
            }
        }
    }
}

#[test]
fn lossy_batch_digests_are_thread_count_invariant_for_every_scheme() {
    for name in standard_registry().single_names() {
        assert_thread_invariant("lossy-p", &format!("{name}@lossy-p"), batch_digest);
    }
}

#[test]
fn retry_traces_are_thread_count_invariant() {
    // r3 puts retransmit counting, timeout pricing, and per-attempt
    // backoff jitter on the report path — all must merge identically.
    for name in standard_registry().single_names() {
        assert_thread_invariant("lossy-25/r3", &format!("{name}@lossy-25/r3"), batch_digest);
    }
}

#[test]
fn split_brain_epoch_digests_are_thread_count_invariant() {
    for name in dynamic_single_names() {
        assert_thread_invariant("split-brain", &format!("{name}@split-brain"), epoch_digest);
    }
}

#[test]
fn bursty_loss_composed_with_a_net_model_stays_invariant() {
    // Burst windows share per-edge attempt counters; composing with the
    // cluster model exercises the partition-free hostile path under
    // non-unit edge pricing.
    for name in dynamic_single_names() {
        assert_thread_invariant("bursty@cluster", &format!("{name}@bursty@cluster"), batch_digest);
    }
}

#[test]
fn faulted_reports_actually_differ_from_fault_free_ones() {
    // Sanity for the battery itself: the hostile suffix is not a no-op.
    let hostile = batch_digest("pira@lossy-p", 7, 1, 0);
    let clean = batch_digest("pira", 7, 1, 0);
    assert_ne!(hostile, clean, "lossy-p left pira's report untouched");
}

#[test]
fn out_of_range_fault_plans_are_rejected_at_wrap_time() {
    // The wrapper refuses a plan naming peers outside the scheme's id
    // space instead of silently no-opping the crash (the original bug).
    let inner = build("pira");
    let n = inner.node_count();
    let mut plan = FaultPlan::new();
    plan.crash(n + 7);
    let err = Hostile::new(inner, plan, RetryPolicy::none(), Default::default(), "crash")
        .err()
        .expect("out-of-range plan must not wrap");
    match err {
        SchemeError::FaultPlanOutOfRange { node, n: got_n } => {
            assert_eq!(node, n + 7);
            assert_eq!(got_n, n);
        }
        other => panic!("wrong error for out-of-range plan: {other}"),
    }
}
