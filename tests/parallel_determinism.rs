//! The parallel driver's headline guarantee, enforced on real schemes:
//! `ParallelDriver` with `threads = 1` and `threads = 8` must produce
//! **identical** merged summaries for the same seed, across the workload
//! catalog.
//!
//! Every query is derived from its index — range, origin, and scheme seed
//! are all pure functions of `(workload, seed, q)` — and per-thread sample
//! vectors merge in shard order before a single sort-and-summarize pass,
//! so nothing about the sharding can leak into the report. This test is
//! the contract the sweeps and the persisted bench baseline rely on to
//! stay reproducible while running at full hardware width.

use armada_suite::dht_api::{
    BuildParams, ChurnPlan, DriverReport, ParallelDriver, RangeScheme, WorkloadGen,
    CHURN_PLAN_NAMES,
};
use armada_suite::experiments::standard_registry;

const DOMAIN: (f64, f64) = (0.0, 1000.0);

/// Field-by-field exact equality of two reports (Summary is `PartialEq`
/// over plain `f64`s; identical merged samples give bitwise-equal stats),
/// including the per-epoch series of epoch-driven runs.
fn assert_reports_identical(a: &DriverReport, b: &DriverReport, ctx: &str) {
    assert_eq!(a.scheme, b.scheme, "{ctx}: scheme");
    assert_eq!(a.queries, b.queries, "{ctx}: queries");
    assert_eq!(a.delay, b.delay, "{ctx}: delay");
    assert_eq!(a.latency, b.latency, "{ctx}: latency");
    assert_eq!(a.messages, b.messages, "{ctx}: messages");
    assert_eq!(a.dest_peers, b.dest_peers, "{ctx}: dest_peers");
    assert_eq!(a.mesg_ratio, b.mesg_ratio, "{ctx}: mesg_ratio");
    assert_eq!(a.incre_ratio, b.incre_ratio, "{ctx}: incre_ratio");
    assert_eq!(a.recall, b.recall, "{ctx}: recall");
    assert_eq!(a.exact_rate, b.exact_rate, "{ctx}: exact_rate");
    assert_eq!(a.results_returned, b.results_returned, "{ctx}: results_returned");
    assert_eq!(a.epochs.len(), b.epochs.len(), "{ctx}: epoch count");
    for (ea, eb) in a.epochs.iter().zip(&b.epochs) {
        let ectx = format!("{ctx} epoch {}", ea.epoch);
        assert_eq!(ea.epoch, eb.epoch, "{ectx}: index");
        assert_eq!(ea.peers, eb.peers, "{ectx}: peers");
        assert_eq!(ea.churn, eb.churn, "{ectx}: churn stats");
        assert_eq!(ea.repair, eb.repair, "{ectx}: repair stats");
        assert_eq!(ea.delay_mean, eb.delay_mean, "{ectx}: delay");
        assert_eq!(ea.latency_mean, eb.latency_mean, "{ectx}: latency");
        assert_eq!(ea.exact_rate, eb.exact_rate, "{ectx}: exact");
        assert_eq!(ea.recall_mean, eb.recall_mean, "{ectx}: recall");
        assert_eq!(ea.results_returned, eb.results_returned, "{ectx}: results");
    }
}

#[test]
fn threads_1_and_8_merge_identically_across_schemes_and_workloads() {
    let registry = standard_registry();
    let params = BuildParams::new(200, DOMAIN.0, DOMAIN.1).with_object_id_len(32);

    // A scheme from each family: Kautz-routed, CAN-flooded, trie-layered,
    // and linked-list walked.
    for scheme_name in ["pira", "dcf-can", "pht-chord", "skipgraph"] {
        let mut rng = simnet::rng_from_seed(0xdec0de);
        let mut scheme = registry.build_single(scheme_name, &params, &mut rng).unwrap();
        for h in 0..200u64 {
            use armada_suite::rand::Rng;
            scheme.publish(rng.gen_range(DOMAIN.0..=DOMAIN.1), h).unwrap();
        }

        for wl_name in ["uniform", "zipf-hot", "clustered", "wide-scan", "mixed"] {
            let workload = WorkloadGen::named(wl_name, DOMAIN).unwrap();
            let driver =
                ParallelDriver { queries: 60, seed: 7, threads: 1, shard_salt: 0, metrics: false };
            let serial = driver.run(scheme.as_ref(), &workload).unwrap();
            let sharded = driver.with_threads(8).run(scheme.as_ref(), &workload).unwrap();
            assert_reports_identical(&serial, &sharded, &format!("{scheme_name}/{wl_name}"));
            // And the batch actually measured something.
            assert_eq!(serial.queries, 60);
            assert!(serial.delay.count == 60 && serial.delay.max >= serial.delay.mean);
        }
    }
}

/// Builds and loads one scheme instance, identically every call: epoch-mode
/// runs mutate the scheme, so each thread-count run gets a fresh build from
/// the same seed.
fn fresh_scheme(name: &str) -> Box<dyn RangeScheme> {
    let registry = standard_registry();
    let params = BuildParams::new(150, DOMAIN.0, DOMAIN.1).with_object_id_len(32);
    let mut rng = simnet::rng_from_seed(0xe90c);
    let mut scheme = registry.build_single(name, &params, &mut rng).unwrap();
    for h in 0..150u64 {
        use armada_suite::rand::Rng;
        scheme.publish(rng.gen_range(DOMAIN.0..=DOMAIN.1), h).unwrap();
    }
    scheme
}

#[test]
fn epoch_mode_reports_are_identical_across_thread_counts_for_every_plan() {
    // The acceptance bar: under every named churn plan, the epoch-driven
    // report — per-epoch series included — must not depend on threads.
    let workload = WorkloadGen::named("uniform", DOMAIN).unwrap();
    for scheme_name in ["pira", "dcf-can"] {
        for plan_name in CHURN_PLAN_NAMES {
            let plan = ChurnPlan::named(plan_name).unwrap().with_rate(6);
            let driver =
                ParallelDriver { queries: 30, seed: 11, threads: 1, shard_salt: 0, metrics: false };
            let mut serial_scheme = fresh_scheme(scheme_name);
            let serial = driver.run_epochs(serial_scheme.as_mut(), &workload, &plan, 4).unwrap();
            for threads in [3, 8] {
                let mut sharded_scheme = fresh_scheme(scheme_name);
                let sharded = driver
                    .with_threads(threads)
                    .run_epochs(sharded_scheme.as_mut(), &workload, &plan, 4)
                    .unwrap();
                assert_reports_identical(
                    &serial,
                    &sharded,
                    &format!("{scheme_name}/{plan_name}/t{threads}"),
                );
            }
            assert_eq!(serial.queries, 120, "4 epochs × 30 queries");
            assert_eq!(serial.epochs.len(), 4);
            // Churn actually happened (epoch 0 is the clean baseline).
            let events: usize = serial.epochs.iter().map(|e| e.churn.events()).sum();
            assert!(events > 0, "{scheme_name}/{plan_name} applied no churn");
        }
    }
}

#[test]
fn replicated_epoch_reports_are_identical_across_thread_counts() {
    // The replication layer must not cost the determinism guarantee:
    // replica placement, recovery fetches, and the per-epoch repair series
    // are all pure functions of the query index and the membership
    // history, so a replicated scheme's epoch report — repair series
    // included — is bitwise identical for any thread count.
    let workload = WorkloadGen::named("uniform", DOMAIN).unwrap();
    for scheme_name in ["pira+r3", "dcf-can+ns2"] {
        for plan_name in ["massacre", "steady-churn"] {
            let plan = ChurnPlan::named(plan_name).unwrap().with_rate(6);
            let driver =
                ParallelDriver { queries: 30, seed: 11, threads: 1, shard_salt: 0, metrics: false };
            let mut serial_scheme = fresh_scheme(scheme_name);
            let serial = driver.run_epochs(serial_scheme.as_mut(), &workload, &plan, 4).unwrap();
            for threads in [3, 8] {
                let mut sharded_scheme = fresh_scheme(scheme_name);
                let sharded = driver
                    .with_threads(threads)
                    .run_epochs(sharded_scheme.as_mut(), &workload, &plan, 4)
                    .unwrap();
                assert_reports_identical(
                    &serial,
                    &sharded,
                    &format!("{scheme_name}/{plan_name}/t{threads}"),
                );
            }
            // Replication is genuinely active in these runs: the massacre
            // plan's crashes must trigger repair placements somewhere.
            if plan_name == "massacre" {
                let placed: usize = serial.epochs.iter().map(|e| e.repair.placed).sum();
                assert!(placed > 0, "{scheme_name}/{plan_name}: no repair traffic recorded");
            }
        }
    }
}

#[test]
fn latency_reports_are_thread_count_invariant_under_every_net_model() {
    // The cost-model layer's determinism claim: every edge cost is a pure
    // function of (model, seed, src, dst) — no RNG stream order — so the
    // merged latency summary cannot depend on how queries were sharded,
    // under any cataloged model.
    let registry = standard_registry();
    for net_name in armada_suite::dht_api::NET_MODEL_NAMES {
        for scheme_name in ["pira", "pht-chord", "skipgraph"] {
            let name = format!("{scheme_name}@{net_name}");
            let params = BuildParams::new(150, DOMAIN.0, DOMAIN.1).with_object_id_len(32);
            let mut rng = simnet::rng_from_seed(0x1a7);
            let mut scheme = registry.build_single(&name, &params, &mut rng).unwrap();
            for h in 0..150u64 {
                use armada_suite::rand::Rng;
                scheme.publish(rng.gen_range(DOMAIN.0..=DOMAIN.1), h).unwrap();
            }
            let workload = WorkloadGen::named("mixed", DOMAIN).unwrap();
            let driver =
                ParallelDriver { queries: 48, seed: 5, threads: 1, shard_salt: 0, metrics: false };
            let serial = driver.run(scheme.as_ref(), &workload).unwrap();
            for threads in [3, 8] {
                let sharded = driver.with_threads(threads).run(scheme.as_ref(), &workload).unwrap();
                assert_reports_identical(&serial, &sharded, &format!("{name}/t{threads}"));
            }
            assert_eq!(serial.latency.count, 48, "{name}: latency was measured");
            if net_name == "unit" {
                assert!(serial.latency.mean <= serial.delay.mean, "{name}: unit ≤ hop delay");
            }
        }
    }
}

#[test]
fn streaming_and_materialized_drivers_are_interchangeable_at_scale() {
    // The scaling sweeps run the streaming driver (ranges derived on the
    // fly inside each worker) so a 10⁶-query batch never materializes its
    // range table. Contract: at every batch size and thread count, the
    // streaming report is bitwise identical to the materialized oracle —
    // the only difference is *when* `workload.range(seed, q)` is evaluated.
    let scheme = fresh_scheme("pira");
    let workload = WorkloadGen::named("mixed", DOMAIN).unwrap();
    for queries in [1_000usize, 10_000] {
        let mut baseline: Option<DriverReport> = None;
        for threads in [1usize, 4] {
            let driver =
                ParallelDriver { queries, seed: 0xba5e, threads, shard_salt: 0, metrics: false };
            let streamed = driver.run(scheme.as_ref(), &workload).unwrap();
            let materialized = driver.run_materialized(scheme.as_ref(), &workload).unwrap();
            let ctx = format!("pira/q{queries}/t{threads}");
            assert_reports_identical(&streamed, &materialized, &ctx);
            // And across thread counts, both match the t = 1 report.
            match &baseline {
                None => baseline = Some(streamed),
                Some(b) => assert_reports_identical(b, &streamed, &ctx),
            }
        }
    }
}

#[test]
fn trace_streams_are_byte_identical_across_threads_and_shard_salts() {
    // The observability plane's determinism bar, on the nastiest composed
    // stack in the registry grammar: replication + straggler edge pricing
    // + a split-brain partition plan. The *serialized* event streams —
    // virtual-time stamps, event ids, fault verdicts, replica fetches —
    // must be byte-identical however the batch was sharded.
    let registry = standard_registry();
    let name = "pira+r2@straggler@split-brain";
    let params = BuildParams::new(150, DOMAIN.0, DOMAIN.1).with_object_id_len(32).with_trace(true);
    let mut rng = simnet::rng_from_seed(0xe90c);
    let mut scheme = registry.build_single(name, &params, &mut rng).unwrap();
    for h in 0..150u64 {
        use armada_suite::rand::Rng;
        scheme.publish(rng.gen_range(DOMAIN.0..=DOMAIN.1), h).unwrap();
    }
    let workload = WorkloadGen::named("mixed", DOMAIN).unwrap();
    let serialize = |threads: usize, salt: u64| {
        let driver =
            ParallelDriver { queries: 40, seed: 13, threads, shard_salt: salt, metrics: false };
        let (report, traces) = driver.run_traced(scheme.as_ref(), &workload).unwrap();
        assert_eq!(traces.len(), 40, "one trace per query");
        let stream: String = traces.iter().map(|t| t.to_jsonl()).collect();
        (report, stream)
    };
    let (reference_report, reference) = serialize(1, 0);
    assert!(!reference.is_empty(), "the composed stack emitted no events");
    assert!(reference.contains("\"type\":\"hop\""), "no hops in the stream");
    for threads in [1usize, 4] {
        for salt in [0u64, 0x5eed, 0xfeed_face_0ca1] {
            let (report, stream) = serialize(threads, salt);
            assert_reports_identical(
                &report,
                &reference_report,
                &format!("{name}/t{threads}/salt{salt:#x}"),
            );
            assert_eq!(
                stream, reference,
                "{name}: trace stream moved at threads {threads}, salt {salt:#x}"
            );
        }
    }
    // The explain layer's accounting invariant holds for every traced
    // query of the batch: the tree total reproduces the reported costs.
    let driver =
        ParallelDriver { queries: 40, seed: 13, threads: 1, shard_salt: 0, metrics: false };
    for q in 0..8 {
        let (out, trace) = driver.trace_one(scheme.as_ref(), &workload, q).unwrap();
        assert_eq!(
            trace.root.total(),
            (out.delay, out.latency, out.messages),
            "query {q}: explain tree does not reproduce the reported costs"
        );
    }
}

#[test]
fn epoch_mode_refuses_static_schemes_honestly() {
    let workload = WorkloadGen::named("uniform", DOMAIN).unwrap();
    let plan = ChurnPlan::named("steady-churn").unwrap();
    let mut scheme = fresh_scheme("skipgraph");
    let err = ParallelDriver::new(10)
        .run_epochs(scheme.as_mut(), &workload, &plan, 2)
        .expect_err("skipgraph has no dynamics");
    assert!(matches!(err, armada_suite::dht_api::SchemeError::Unsupported { .. }), "{err}");
}

#[test]
fn rect_driver_is_thread_count_invariant_too() {
    let registry = standard_registry();
    let domains = [(0.0, 100.0), (0.0, 100.0)];
    let params = armada_suite::dht_api::MultiBuildParams::new(150, &domains).with_object_id_len(32);
    let mut rng = simnet::rng_from_seed(0xabcd);
    let mut scheme = registry.build_multi("mira", &params, &mut rng).unwrap();
    for h in 0..150u64 {
        use armada_suite::rand::Rng;
        let p = [rng.gen_range(0.0..=100.0), rng.gen_range(0.0..=100.0)];
        scheme.publish_point(&p, h).unwrap();
    }
    for wl_name in ["rect-correlated", "mixed", "uniform"] {
        let workload = WorkloadGen::named(wl_name, (0.0, 100.0)).unwrap();
        let driver =
            ParallelDriver { queries: 40, seed: 3, threads: 1, shard_salt: 0, metrics: false };
        let serial = driver.run_multi(scheme.as_ref(), &domains, &workload).unwrap();
        let sharded =
            driver.with_threads(8).run_multi(scheme.as_ref(), &domains, &workload).unwrap();
        assert_reports_identical(&serial, &sharded, &format!("mira/{wl_name}"));
    }
}
