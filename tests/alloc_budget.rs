//! Per-scheme allocation budgets on the query hot path, enforced at
//! N = 10³ with the workspace's counting allocator installed as this test
//! binary's global allocator.
//!
//! The zero-allocation hot-path work (scratch reuse, `Sim` recycling,
//! interned routing state) drove steady-state allocations per query down
//! to O(results); these ceilings pin that property so a regressed hot
//! path — a reintroduced per-hop clone, a `Sim::new` per query — fails
//! `cargo test`, not just the (slower, feature-gated) bench gate. Each
//! ceiling carries ~4× headroom over the measured steady state so routine
//! drift stays quiet while an accidental O(messages) regression (tens of
//! allocations per hop at these sizes) trips immediately.
//!
//! Everything runs inside ONE `#[test]` so the process-wide counter is
//! never shared with a concurrent test thread; queries are driven
//! serially, with a warm-up batch first so one-time scratch growth
//! (heap capacity ratchets up to the largest query seen) is excluded from
//! the steady-state figure — exactly how the bench's allocation probe
//! measures.

use armada_suite::dht_api::{BuildParams, MultiBuildParams, WorkloadGen};
use armada_suite::experiments::standard_registry;
use armada_suite::rand::Rng;

#[global_allocator]
static ALLOC: counting_alloc::CountingAlloc = counting_alloc::CountingAlloc;

const DOMAIN: (f64, f64) = (0.0, 1000.0);
const N: usize = 1000;
const WARMUP: usize = 32;
const MEASURED: usize = 200;

/// Steady-state allocations per query for one single-attribute scheme:
/// warm up the scratch, then meter `MEASURED` serial queries.
fn allocs_per_query(name: &str) -> f64 {
    let registry = standard_registry();
    let params = BuildParams::new(N, DOMAIN.0, DOMAIN.1).with_object_id_len(32);
    let mut rng = simnet::rng_from_seed(0xa110c);
    let mut scheme = registry.build_single(name, &params, &mut rng).unwrap();
    for h in 0..N as u64 {
        scheme.publish(rng.gen_range(DOMAIN.0..=DOMAIN.1), h).unwrap();
    }
    let workload = WorkloadGen::named("mixed", DOMAIN).unwrap();
    let mut scratch = simnet::QueryScratch::new();
    let mut run = |q: usize| {
        let (lo, hi) = workload.range(7, q as u64);
        let mut orng = simnet::rng_from_seed(0x0e15 ^ q as u64);
        let origin = scheme.random_origin(&mut orng);
        let out = scheme.range_query_scratch(origin, lo, hi, 7 + q as u64, &mut scratch).unwrap();
        assert!(out.exact, "{name}: query {q} inexact on a clean network");
    };
    for q in 0..WARMUP {
        run(q);
    }
    let before = counting_alloc::allocation_count();
    for q in WARMUP..WARMUP + MEASURED {
        run(q);
    }
    (counting_alloc::allocation_count() - before) as f64 / MEASURED as f64
}

/// Same metering for the multi-attribute scheme, through `rect_query_scratch`.
fn rect_allocs_per_query(name: &str, dims: usize) -> f64 {
    let registry = standard_registry();
    let domains: Vec<(f64, f64)> = vec![DOMAIN; dims];
    let params = MultiBuildParams::new(N, &domains).with_object_id_len(32);
    let mut rng = simnet::rng_from_seed(0xa110c);
    let mut scheme = registry.build_multi(name, &params, &mut rng).unwrap();
    for h in 0..N as u64 {
        let p: Vec<f64> = (0..dims).map(|_| rng.gen_range(DOMAIN.0..=DOMAIN.1)).collect();
        scheme.publish_point(&p, h).unwrap();
    }
    let workload = WorkloadGen::named("rect-correlated", DOMAIN).unwrap();
    let mut scratch = simnet::QueryScratch::new();
    let mut run = |q: usize| {
        let rect = workload.rect(&domains, 7, q as u64);
        let mut orng = simnet::rng_from_seed(0x0e15 ^ q as u64);
        let origin = scheme.random_origin(&mut orng);
        scheme.rect_query_scratch(origin, &rect, 7 + q as u64, &mut scratch).unwrap();
    };
    for q in 0..WARMUP {
        run(q);
    }
    let before = counting_alloc::allocation_count();
    for q in WARMUP..WARMUP + MEASURED {
        run(q);
    }
    (counting_alloc::allocation_count() - before) as f64 / MEASURED as f64
}

#[test]
fn steady_state_allocations_per_query_stay_within_budget() {
    assert!(counting_alloc::is_installed(), "counting allocator not installed");

    // (scheme, ceiling). For context, the pre-optimization baseline at
    // this N measured ~1854 allocations/query for pira.
    // Measured steady states when these budgets were set (mixed workload,
    // this N): pira ≈ 29, seqwalk ≈ 55, dcf-can ≈ 92, dcf-can-naive ≈ 27,
    // pht-chord ≈ 103, skipgraph ≈ 3.5, mira ≈ 28. The pre-optimization
    // pira figure at this N was ≈ 1854.
    let budgets = [
        ("pira", 120.0),
        ("seqwalk", 220.0),
        ("dcf-can", 370.0),
        ("dcf-can-naive", 110.0),
        ("pht-chord", 410.0),
        ("skipgraph", 20.0),
    ];
    let mut failures = Vec::new();
    for (name, ceiling) in budgets {
        let got = allocs_per_query(name);
        eprintln!("alloc budget: {name:>14} {got:>10.2} / {ceiling}");
        if got > ceiling {
            failures.push(format!("{name}: {got:.2} allocs/query exceeds budget {ceiling}"));
        }
    }
    let got = rect_allocs_per_query("mira", 2);
    eprintln!("alloc budget: {:>14} {got:>10.2} / {}", "mira", 120.0);
    if got > 120.0 {
        failures.push(format!("mira: {got:.2} allocs/query exceeds budget 120"));
    }
    assert!(failures.is_empty(), "hot-path allocation regressions:\n{}", failures.join("\n"));
}
