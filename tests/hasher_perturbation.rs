//! The runtime determinism canary: digests must survive hasher
//! perturbation, shuffled shard submission, and thread-count changes.
//!
//! The static rules (`cargo run -p detlint -- --workspace`) catch the
//! *patterns* that break bitwise reproducibility; this test catches
//! whatever the rules miss, by perturbing every ambient source of order
//! the std library offers and asserting the [`DigestReport`] — a
//! canonical bit-exact hash over the full `DriverReport`, epochs included
//! — never moves:
//!
//! * **Hasher seeds** — `std`'s `RandomState` derives fresh sip-hash keys
//!   per thread and per instance, so every run executes inside a freshly
//!   spawned OS thread: any surviving hash collection's iteration order is
//!   genuinely re-randomized between rounds.
//! * **Shard submission order** — [`ParallelDriver::shard_salt`] permutes
//!   the order worker threads are handed their shards; results must merge
//!   by shard index regardless.
//! * **Thread count** — 1 vs 4 workers re-cuts the shard boundaries
//!   entirely.
//!
//! Coverage: every registered single-attribute scheme (bare and under the
//! `@straggler` net model — the costliest, most order-sensitive edge
//! pricing in the catalog), every dynamic scheme's epoch-driven run under
//! churn (bare and `+r3`-replicated, where repair traffic is on the
//! report path), every multi-attribute scheme's rectangle batch, and the
//! hostile-network layer (`@lossy-p/r2` batches, where loss verdicts and
//! retry pricing are on the report path, and `@split-brain` epoch runs,
//! where the partition schedule is).

use armada_suite::dht_api::{
    BuildParams, ChurnPlan, DigestReport, MultiBuildParams, ParallelDriver, WorkloadGen,
};
use armada_suite::experiments::{dynamic_single_names, standard_registry};
use armada_suite::rand::Rng;

const DOMAIN: (f64, f64) = (0.0, 1000.0);
const N: usize = 100;
const BATCH_QUERIES: usize = 16;
const EPOCH_QUERIES: usize = 12;
const EPOCHS: usize = 3;

/// One shard-submission salt per perturbation round (round 0 keeps the
/// natural order, so "fresh thread alone" is itself a tested case).
const ROUND_SALTS: [u64; 3] = [0, 0x5eed, 0xfeed_face_0ca1];

/// Batch digest for a single-attribute scheme, built fresh per call so
/// every run (and its hash state, if any crept back in) is independent.
fn batch_digest(name: &str, threads: usize, salt: u64) -> DigestReport {
    let registry = standard_registry();
    let params = BuildParams::new(N, DOMAIN.0, DOMAIN.1).with_object_id_len(32);
    let mut rng = simnet::rng_from_seed(0x0ca9_a817);
    let mut scheme = registry.build_single(name, &params, &mut rng).expect("scheme builds");
    for h in 0..N as u64 {
        scheme.publish(rng.gen_range(DOMAIN.0..=DOMAIN.1), h).expect("publish");
    }
    let workload = WorkloadGen::named("mixed", DOMAIN).expect("cataloged");
    let driver = ParallelDriver {
        queries: BATCH_QUERIES,
        seed: 7,
        threads,
        shard_salt: salt,
        metrics: false,
    };
    DigestReport::of(&driver.run(scheme.as_ref(), &workload).expect("fault-free run"))
}

/// Epoch-driven digest for a dynamic scheme under churn: the scheme is
/// rebuilt fresh per call because epoch runs mutate membership.
fn epoch_digest(name: &str, threads: usize, salt: u64) -> DigestReport {
    let registry = standard_registry();
    let params = BuildParams::new(N, DOMAIN.0, DOMAIN.1).with_object_id_len(32);
    let mut rng = simnet::rng_from_seed(0x0ca9_a817);
    let mut scheme = registry.build_single(name, &params, &mut rng).expect("scheme builds");
    for h in 0..N as u64 {
        scheme.publish(rng.gen_range(DOMAIN.0..=DOMAIN.1), h).expect("publish");
    }
    let workload = WorkloadGen::named("uniform", DOMAIN).expect("cataloged");
    let plan = ChurnPlan::named("steady-churn").expect("cataloged").with_rate(4);
    let driver = ParallelDriver {
        queries: EPOCH_QUERIES,
        seed: 11,
        threads,
        shard_salt: salt,
        metrics: false,
    };
    DigestReport::of(
        &driver.run_epochs(scheme.as_mut(), &workload, &plan, EPOCHS).expect("epoch run"),
    )
}

/// Rectangle-batch digest for a multi-attribute scheme.
fn rect_digest(name: &str, threads: usize, salt: u64) -> DigestReport {
    let registry = standard_registry();
    let domains = [(0.0, 100.0), (0.0, 100.0)];
    let params = MultiBuildParams::new(N, &domains).with_object_id_len(32);
    let mut rng = simnet::rng_from_seed(0x0ca9_a817);
    let mut scheme = registry.build_multi(name, &params, &mut rng).expect("scheme builds");
    for h in 0..N as u64 {
        let p = [rng.gen_range(0.0..=100.0), rng.gen_range(0.0..=100.0)];
        scheme.publish_point(&p, h).expect("publish");
    }
    let workload = WorkloadGen::named("mixed", (0.0, 100.0)).expect("cataloged");
    let driver = ParallelDriver {
        queries: BATCH_QUERIES,
        seed: 3,
        threads,
        shard_salt: salt,
        metrics: false,
    };
    DigestReport::of(&driver.run_multi(scheme.as_ref(), &domains, &workload).expect("rect run"))
}

/// The canary harness: computes a reference digest on the current thread,
/// then re-runs `digest` inside 3 freshly spawned OS threads (fresh
/// `RandomState` hasher keys each), each round at threads ∈ {1, 4} under
/// that round's shard-submission salt, and requires every digest to be
/// identical.
fn assert_perturbation_invariant_for(
    label: &str,
    name: &str,
    digest: fn(&str, usize, u64) -> DigestReport,
) {
    let reference = digest(name, 1, 0);
    for (round, &salt) in ROUND_SALTS.iter().enumerate() {
        let owned = name.to_string();
        let digests =
            std::thread::spawn(move || [digest(&owned, 1, salt), digest(&owned, 4, salt)])
                .join()
                .expect("perturbation thread panicked");
        for (d, threads) in digests.iter().zip([1usize, 4]) {
            assert_eq!(
                *d, reference,
                "{label}/{name}: digest moved (round {round}, salt {salt:#x}, \
                 threads {threads}) — got {d}, want {reference}"
            );
        }
    }
}

#[test]
fn batch_digests_survive_perturbation_for_every_single_scheme() {
    for name in standard_registry().single_names() {
        assert_perturbation_invariant_for("batch", name, batch_digest);
    }
}

#[test]
fn straggler_net_model_digests_survive_perturbation() {
    // The straggler model prices edges most unevenly — the variant where
    // any ordering leak in latency accounting would show first.
    for name in standard_registry().single_names() {
        assert_perturbation_invariant_for("straggler", &format!("{name}@straggler"), batch_digest);
    }
}

#[test]
fn epoch_digests_survive_perturbation_for_every_dynamic_scheme() {
    for name in dynamic_single_names() {
        assert_perturbation_invariant_for("epochs", &name, epoch_digest);
    }
}

#[test]
fn replicated_epoch_digests_survive_perturbation() {
    // `+r3` puts replica placement, recovery fetches, and per-epoch repair
    // stats on the report path; all of it must digest identically too.
    for name in dynamic_single_names() {
        assert_perturbation_invariant_for("epochs+r3", &format!("{name}+r3"), epoch_digest);
    }
}

#[test]
fn replicated_batch_digests_survive_perturbation() {
    for name in dynamic_single_names() {
        assert_perturbation_invariant_for("batch+r3", &format!("{name}+r3"), batch_digest);
    }
}

#[test]
fn hostile_batch_digests_survive_perturbation() {
    // `@lossy-p/r2` puts loss verdicts, retransmit counting, and
    // timeout/backoff latency pricing on the report path for every
    // registered scheme — native fault injection and the generic
    // response-plane degradation alike.
    for name in standard_registry().single_names() {
        assert_perturbation_invariant_for(
            "lossy-p/r2",
            &format!("{name}@lossy-p/r2"),
            batch_digest,
        );
    }
}

#[test]
fn hostile_epoch_digests_survive_perturbation() {
    // `@split-brain` epoch runs traverse the partition's open/heal
    // schedule while churn keeps mutating membership underneath.
    for name in dynamic_single_names() {
        assert_perturbation_invariant_for(
            "split-brain",
            &format!("{name}@split-brain"),
            epoch_digest,
        );
    }
}

#[test]
fn rect_digests_survive_perturbation_for_every_multi_scheme() {
    for name in standard_registry().multi_names() {
        assert_perturbation_invariant_for("rect", name, rect_digest);
    }
}

/// Batch digest with per-scheme metrics collection on: the merged
/// [`MetricsRegistry`] is part of the digested report, so any
/// shard-order dependence in counter/histogram merging moves the digest.
fn metrics_digest(name: &str, threads: usize, salt: u64) -> DigestReport {
    let registry = standard_registry();
    let params = BuildParams::new(N, DOMAIN.0, DOMAIN.1).with_object_id_len(32);
    let mut rng = simnet::rng_from_seed(0x0ca9_a817);
    let mut scheme = registry.build_single(name, &params, &mut rng).expect("scheme builds");
    for h in 0..N as u64 {
        scheme.publish(rng.gen_range(DOMAIN.0..=DOMAIN.1), h).expect("publish");
    }
    let workload = WorkloadGen::named("mixed", DOMAIN).expect("cataloged");
    let driver = ParallelDriver {
        queries: BATCH_QUERIES,
        seed: 7,
        threads,
        shard_salt: salt,
        metrics: true,
    };
    DigestReport::of(&driver.run(scheme.as_ref(), &workload).expect("fault-free run"))
}

#[test]
fn metrics_digests_survive_perturbation() {
    // The observability plane's own determinism bar: with metrics on, the
    // digested report includes every counter, histogram, and per-peer
    // load cell — all of which must merge shard-order-independently.
    for name in ["pira", "seqwalk", "pira+r3@lossy-p/r2", "dcf-can@straggler"] {
        assert_perturbation_invariant_for("metrics", name, metrics_digest);
    }
}

#[test]
fn traced_runs_digest_identically_to_untraced_runs() {
    // Tracing is an observer, never an actor: a traced batch must produce
    // the same `DriverReport` — digest-identical — as the plain batch,
    // through the full wrapper stack (replication, net models, hostile
    // plans with native and generic retry paths alike).
    let registry = standard_registry();
    for name in ["pira", "seqwalk@straggler", "pira+r3@lossy-p/r2", "skipgraph@throttle"] {
        let build = || {
            let params =
                BuildParams::new(N, DOMAIN.0, DOMAIN.1).with_object_id_len(32).with_trace(true);
            let mut rng = simnet::rng_from_seed(0x0ca9_a817);
            let mut scheme = registry.build_single(name, &params, &mut rng).expect("scheme builds");
            for h in 0..N as u64 {
                scheme.publish(rng.gen_range(DOMAIN.0..=DOMAIN.1), h).expect("publish");
            }
            scheme
        };
        let workload = WorkloadGen::named("mixed", DOMAIN).expect("cataloged");
        let driver = ParallelDriver {
            queries: BATCH_QUERIES,
            seed: 7,
            threads: 4,
            shard_salt: 0,
            metrics: false,
        };
        let plain = driver.run(build().as_ref(), &workload).expect("plain run");
        let (traced, traces) = driver.run_traced(build().as_ref(), &workload).expect("traced run");
        assert_eq!(
            DigestReport::of(&plain),
            DigestReport::of(&traced),
            "{name}: tracing moved the report digest"
        );
        assert_eq!(traces.len(), BATCH_QUERIES, "{name}: one trace per query");
        // And the trace-off build digests exactly like the canary's
        // (tracing defaults off; `with_trace(true)` only arms collection).
        assert_eq!(
            DigestReport::of(&plain),
            batch_digest(name, 1, 0),
            "{name}: trace-armed build changed the report"
        );
    }
}

#[test]
fn digests_distinguish_different_runs() {
    // Sanity for the canary itself: the digest is not a constant — a
    // different seed or scheme produces a different digest.
    let a = batch_digest("pira", 1, 0);
    let b = batch_digest("seqwalk", 1, 0);
    assert_ne!(a, b, "different schemes digested identically");
}
