//! Repair idempotency, pinned across every dynamic scheme and crash
//! severity: after churn, one `stabilize()` pass must leave *nothing* for
//! a second pass to do — the second call returns 0 operations — and the
//! replication layer's `re_replicate()` obeys the same contract.
//!
//! This generalizes what used to be pinned only by armada's unit test of
//! `SingleArmada::repair_records`: a repair sweep that keeps finding work
//! on a converged network is either leaking repairs or mis-detecting loss,
//! and both bugs corrupt the repair-traffic series the churn and
//! replication experiments report.
//!
//! The hostile layer adds the partition variant: peers crash while a
//! partition plan's split is open, the split heals, and the same
//! idempotency contract must hold — the first `stabilize()` after the
//! heal converges the network, the second finds nothing, and a second
//! `re_replicate()` places, drops, and sends nothing.

use armada_suite::dht_api::{BuildParams, RangeScheme, ReplicaPolicy};
use armada_suite::experiments::{dynamic_single_names, standard_registry};
use proptest::prelude::*;
use rand::Rng;

const DOMAIN: (f64, f64) = (0.0, 1000.0);

/// Crash severities exercised: a light brush, a heavy blow, and a third of
/// the network.
const SEVERITIES: [usize; 3] = [3, 12, 24];

/// The partition shapes of the hostile catalog.
const PARTITION_PLANS: [&str; 2] = ["split-brain", "island-3"];

fn build_loaded(name: &str, seed: u64, policy: Option<ReplicaPolicy>) -> Box<dyn RangeScheme> {
    let registry = standard_registry();
    let mut params = BuildParams::new(72, DOMAIN.0, DOMAIN.1).with_object_id_len(24);
    if let Some(p) = policy {
        params = params.with_replication(p);
    }
    let mut rng = simnet::rng_from_seed(seed ^ dht_api::fnv1a(name.as_bytes()));
    let mut scheme = registry.build_single(name, &params, &mut rng).expect("build");
    for h in 0..150u64 {
        scheme.publish(rng.gen_range(DOMAIN.0..=DOMAIN.1), h).expect("publish");
    }
    scheme
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn second_stabilize_finds_nothing_to_repair(seed in 0u64..10_000) {
        for name in dynamic_single_names() {
            for &severity in &SEVERITIES {
                let mut scheme = build_loaded(&name, seed, None);
                let dynamic = scheme.as_dynamic().expect("dynamic scheme");
                let mut vrng = simnet::rng_from_seed(seed ^ 0xc4a5);
                for _ in 0..severity {
                    let live = dynamic.live_peers();
                    prop_assert!(!live.is_empty());
                    let victim = live[vrng.gen_range(0..live.len())];
                    dynamic.crash(victim).expect("crash a live peer");
                }
                dynamic.stabilize();
                let second = dynamic.stabilize();
                prop_assert_eq!(
                    second, 0,
                    "{} after {} crashes: a second stabilize must be a no-op",
                    name, severity
                );
                // And the repaired network answers exactly.
                let origin = scheme.random_origin(&mut vrng);
                let out = scheme.range_query(origin, 100.0, 600.0, 0).expect("query");
                prop_assert!(out.exact, "{} inexact after stabilize", name);
            }
        }
    }

    #[test]
    fn second_re_replicate_finds_nothing_to_place(seed in 0u64..10_000) {
        for name in dynamic_single_names() {
            for &severity in &SEVERITIES {
                let mut scheme =
                    build_loaded(&name, seed, Some(ReplicaPolicy::successor(3)));
                {
                    let dynamic = scheme.as_dynamic().expect("dynamic scheme");
                    let mut vrng = simnet::rng_from_seed(seed ^ 0x5e15);
                    for _ in 0..severity {
                        let live = dynamic.live_peers();
                        let victim = live[vrng.gen_range(0..live.len())];
                        dynamic.crash(victim).expect("crash a live peer");
                    }
                }
                let control = scheme.as_replicated().expect("replicated scheme");
                let first = control.re_replicate();
                prop_assert!(
                    first.placed > 0 || severity < 5,
                    "{}: heavy crashes should evict replicas somewhere",
                    name
                );
                let second = control.re_replicate();
                prop_assert_eq!(second.placed, 0, "{} second pass placed copies", name);
                prop_assert_eq!(second.dropped, 0, "{} second pass dropped copies", name);
                prop_assert_eq!(second.messages, 0, "{} second pass sent messages", name);
            }
        }
    }

    #[test]
    fn repair_is_idempotent_after_a_partition_heals(seed in 0u64..10_000) {
        for name in dynamic_single_names() {
            for plan_name in PARTITION_PLANS {
                let schedule = simnet::FaultPlan::named_hostile(plan_name).expect("cataloged");
                let partition = schedule.partition().expect("partition plan");
                let mut scheme = build_loaded(
                    &format!("{name}+r3@{plan_name}"),
                    seed,
                    None,
                );
                // Crash peers while the split is open, then heal.
                scheme.as_hostile().expect("hostile").set_epoch(partition.open_epoch());
                {
                    let dynamic = scheme.as_dynamic().expect("dynamic scheme");
                    let mut vrng = simnet::rng_from_seed(seed ^ 0x9a17);
                    for _ in 0..8 {
                        let live = dynamic.live_peers();
                        prop_assert!(!live.is_empty());
                        let victim = live[vrng.gen_range(0..live.len())];
                        dynamic.crash(victim).expect("crash a live peer");
                    }
                }
                scheme.as_hostile().expect("hostile").set_epoch(partition.heal_epoch());
                // Same contract as the plain-churn cases: one pass each
                // converges, the second finds nothing left to do.
                let dynamic = scheme.as_dynamic().expect("dynamic scheme");
                dynamic.stabilize();
                let second = dynamic.stabilize();
                prop_assert_eq!(
                    second, 0,
                    "{}@{}: second stabilize after heal must be a no-op",
                    name, plan_name
                );
                let control = scheme.as_replicated().expect("replicated scheme");
                control.re_replicate();
                let second = control.re_replicate();
                prop_assert_eq!(second.placed, 0, "{}@{} re-placed", name, plan_name);
                prop_assert_eq!(second.dropped, 0, "{}@{} re-dropped", name, plan_name);
                prop_assert_eq!(second.messages, 0, "{}@{} re-sent", name, plan_name);
                // And the healed, repaired network answers exactly.
                let mut qrng = simnet::rng_from_seed(seed ^ 0x0e4);
                let origin = scheme.random_origin(&mut qrng);
                let out = scheme.range_query(origin, 100.0, 600.0, 0).expect("query");
                prop_assert!(out.exact, "{}@{} inexact after heal", name, plan_name);
            }
        }
    }
}
