//! Repair idempotency, pinned across every dynamic scheme and crash
//! severity: after churn, one `stabilize()` pass must leave *nothing* for
//! a second pass to do — the second call returns 0 operations — and the
//! replication layer's `re_replicate()` obeys the same contract.
//!
//! This generalizes what used to be pinned only by armada's unit test of
//! `SingleArmada::repair_records`: a repair sweep that keeps finding work
//! on a converged network is either leaking repairs or mis-detecting loss,
//! and both bugs corrupt the repair-traffic series the churn and
//! replication experiments report.

use armada_suite::dht_api::{BuildParams, RangeScheme, ReplicaPolicy};
use armada_suite::experiments::{dynamic_single_names, standard_registry};
use proptest::prelude::*;
use rand::Rng;

const DOMAIN: (f64, f64) = (0.0, 1000.0);

/// Crash severities exercised: a light brush, a heavy blow, and a third of
/// the network.
const SEVERITIES: [usize; 3] = [3, 12, 24];

fn build_loaded(name: &str, seed: u64, policy: Option<ReplicaPolicy>) -> Box<dyn RangeScheme> {
    let registry = standard_registry();
    let mut params = BuildParams::new(72, DOMAIN.0, DOMAIN.1).with_object_id_len(24);
    if let Some(p) = policy {
        params = params.with_replication(p);
    }
    let mut rng = simnet::rng_from_seed(seed ^ dht_api::fnv1a(name.as_bytes()));
    let mut scheme = registry.build_single(name, &params, &mut rng).expect("build");
    for h in 0..150u64 {
        scheme.publish(rng.gen_range(DOMAIN.0..=DOMAIN.1), h).expect("publish");
    }
    scheme
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn second_stabilize_finds_nothing_to_repair(seed in 0u64..10_000) {
        for name in dynamic_single_names() {
            for &severity in &SEVERITIES {
                let mut scheme = build_loaded(&name, seed, None);
                let dynamic = scheme.as_dynamic().expect("dynamic scheme");
                let mut vrng = simnet::rng_from_seed(seed ^ 0xc4a5);
                for _ in 0..severity {
                    let live = dynamic.live_peers();
                    prop_assert!(!live.is_empty());
                    let victim = live[vrng.gen_range(0..live.len())];
                    dynamic.crash(victim).expect("crash a live peer");
                }
                dynamic.stabilize();
                let second = dynamic.stabilize();
                prop_assert_eq!(
                    second, 0,
                    "{} after {} crashes: a second stabilize must be a no-op",
                    name, severity
                );
                // And the repaired network answers exactly.
                let origin = scheme.random_origin(&mut vrng);
                let out = scheme.range_query(origin, 100.0, 600.0, 0).expect("query");
                prop_assert!(out.exact, "{} inexact after stabilize", name);
            }
        }
    }

    #[test]
    fn second_re_replicate_finds_nothing_to_place(seed in 0u64..10_000) {
        for name in dynamic_single_names() {
            for &severity in &SEVERITIES {
                let mut scheme =
                    build_loaded(&name, seed, Some(ReplicaPolicy::successor(3)));
                {
                    let dynamic = scheme.as_dynamic().expect("dynamic scheme");
                    let mut vrng = simnet::rng_from_seed(seed ^ 0x5e15);
                    for _ in 0..severity {
                        let live = dynamic.live_peers();
                        let victim = live[vrng.gen_range(0..live.len())];
                        dynamic.crash(victim).expect("crash a live peer");
                    }
                }
                let control = scheme.as_replicated().expect("replicated scheme");
                let first = control.re_replicate();
                prop_assert!(
                    first.placed > 0 || severity < 5,
                    "{}: heavy crashes should evict replicas somewhere",
                    name
                );
                let second = control.re_replicate();
                prop_assert_eq!(second.placed, 0, "{} second pass placed copies", name);
                prop_assert_eq!(second.dropped, 0, "{} second pass dropped copies", name);
                prop_assert_eq!(second.messages, 0, "{} second pass sent messages", name);
            }
        }
    }
}
