//! Cross-scheme differential property test — the paper's exactness claim
//! enforced uniformly through the unified `RangeScheme` trait.
//!
//! Every registered single-attribute scheme receives the *same* dataset and
//! answers the *same* random range queries; all result sets must be
//! identical (and equal to a direct scan). A scheme that silently drops or
//! invents records cannot pass, whatever its delay profile.
//!
//! The dynamics layer extends the claim to churned networks: after a shared
//! `ChurnPlan` runs and `stabilize()` completes, every *dynamic* scheme
//! must again return identical, exact result sets with full peer recall —
//! the stabilize guarantee, pinned cross-scheme.
//!
//! The hostile layer extends it again to partitioned networks: peers
//! crash *while* a partition plan's split is open, and once the split
//! heals, `stabilize()` + `re_replicate()` must restore identical exact
//! result sets with full recall — a partition is loud while open but may
//! leave no permanent disagreement behind.

use armada_suite::dht_api::{BuildParams, ChurnPlan, RangeScheme, CHURN_PLAN_NAMES};
use armada_suite::experiments::standard_registry;
use proptest::prelude::*;
use rand::Rng;

const DOMAIN: (f64, f64) = (0.0, 1000.0);

/// The partition shapes of the hostile catalog (their open/heal epochs
/// come from the catalog itself, not a copy here).
const PARTITION_PLANS: [&str; 2] = ["split-brain", "island-3"];

fn build_all(seed: u64, n: usize) -> Vec<Box<dyn RangeScheme>> {
    let registry = standard_registry();
    let params = BuildParams::new(n, DOMAIN.0, DOMAIN.1).with_object_id_len(24);
    registry
        .single_names()
        .iter()
        .map(|name| {
            let mut rng = simnet::rng_from_seed(seed ^ dht_api::fnv1a(name.as_bytes()));
            registry.build_single(name, &params, &mut rng).expect("build")
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn all_schemes_return_identical_result_sets(
        seed in 0u64..10_000,
        records in 1usize..150,
    ) {
        let mut schemes = build_all(seed, 60);
        prop_assert!(schemes.len() >= 4, "need at least 4 schemes for the differential");

        // One dataset, published into every scheme.
        let mut data_rng = simnet::rng_from_seed(seed ^ 0xda7a);
        let mut data = Vec::new();
        for h in 0..records as u64 {
            let v = data_rng.gen_range(DOMAIN.0..=DOMAIN.1);
            for s in &mut schemes {
                s.publish(v, h).expect("publish");
            }
            data.push((v, h));
        }

        // Identical random queries against every scheme.
        let mut qrng = simnet::rng_from_seed(seed ^ 0x9e4);
        for q in 0..8u64 {
            let lo: f64 = qrng.gen_range(DOMAIN.0..DOMAIN.1);
            let hi = (lo + qrng.gen_range(0.1f64..300.0)).min(DOMAIN.1);
            let mut expected: Vec<u64> = data
                .iter()
                .filter(|&&(v, _)| v >= lo && v <= hi)
                .map(|&(_, h)| h)
                .collect();
            expected.sort_unstable();
            for s in &schemes {
                let origin = s.random_origin(&mut qrng);
                let out = s.range_query(origin, lo, hi, q).expect("query");
                prop_assert_eq!(
                    &out.results,
                    &expected,
                    "{} disagrees on [{}, {}]",
                    s.scheme_name(),
                    lo,
                    hi
                );
            }
        }
    }

    #[test]
    fn dynamic_schemes_agree_exactly_after_churn_and_stabilize(
        seed in 0u64..10_000,
        plan_idx in 0usize..CHURN_PLAN_NAMES.len(),
    ) {
        // Only the schemes that opt into dynamics take part — discovered
        // through the capability hook, not a hard-coded list.
        let mut schemes = build_all(seed, 60);
        schemes.retain_mut(|s| s.as_dynamic().is_some());
        prop_assert!(schemes.len() >= 4, "need several dynamic schemes for the differential");

        let mut data_rng = simnet::rng_from_seed(seed ^ 0xc4a2);
        let mut data = Vec::new();
        for h in 0..100u64 {
            let v = data_rng.gen_range(DOMAIN.0..=DOMAIN.1);
            for s in &mut schemes {
                s.publish(v, h).expect("publish");
            }
            data.push((v, h));
        }

        // The same plan epochs hit every scheme (victims differ per
        // substrate — the plan draws them from each scheme's own live set).
        let plan = ChurnPlan::named(CHURN_PLAN_NAMES[plan_idx]).expect("cataloged").with_rate(10);
        for s in &mut schemes {
            let dynamic = s.as_dynamic().expect("filtered to dynamic schemes");
            for epoch in 0..3 {
                plan.apply(dynamic, seed, epoch).expect("plans tolerate refusals");
            }
            dynamic.stabilize();
        }

        // Post-stabilize: identical, exact result sets with full recall.
        let mut qrng = simnet::rng_from_seed(seed ^ 0x57ab);
        for q in 0..6u64 {
            let lo: f64 = qrng.gen_range(DOMAIN.0..DOMAIN.1);
            let hi = (lo + qrng.gen_range(0.1f64..300.0)).min(DOMAIN.1);
            let mut expected: Vec<u64> = data
                .iter()
                .filter(|&&(v, _)| v >= lo && v <= hi)
                .map(|&(_, h)| h)
                .collect();
            expected.sort_unstable();
            for s in &schemes {
                let origin = s.random_origin(&mut qrng);
                let out = s.range_query(origin, lo, hi, q).expect("query");
                prop_assert_eq!(
                    &out.results,
                    &expected,
                    "{} disagrees on [{}, {}] after {} churn",
                    s.scheme_name(),
                    lo,
                    hi,
                    plan.name()
                );
                prop_assert!(out.exact, "{} inexact after stabilize", s.scheme_name());
                prop_assert_eq!(out.peer_recall(), 1.0, "{} recall", s.scheme_name());
            }
        }
    }

    #[test]
    fn dynamic_schemes_heal_identically_after_a_partition(
        seed in 0u64..10_000,
        plan_idx in 0usize..PARTITION_PLANS.len(),
    ) {
        let plan_name = PARTITION_PLANS[plan_idx];
        let schedule = simnet::FaultPlan::named_hostile(plan_name).expect("cataloged");
        let partition = schedule.partition().expect("partition plan");
        let (open, heal) = (partition.open_epoch(), partition.heal_epoch());

        // Every dynamic scheme, replicated (so `re_replicate` has copies
        // to restore) and wrapped by the partition plan via the registry
        // suffix grammar.
        let registry = standard_registry();
        let params = BuildParams::new(60, DOMAIN.0, DOMAIN.1).with_object_id_len(24);
        let mut schemes: Vec<Box<dyn RangeScheme>> =
            armada_suite::experiments::dynamic_single_names()
                .iter()
                .map(|name| {
                    let mut rng = simnet::rng_from_seed(seed ^ dht_api::fnv1a(name.as_bytes()));
                    registry
                        .build_single(&format!("{name}+r2@{plan_name}"), &params, &mut rng)
                        .expect("build")
                })
                .collect();
        prop_assert!(schemes.len() >= 4, "need several dynamic schemes for the differential");

        let mut data_rng = simnet::rng_from_seed(seed ^ 0x5b17);
        let mut data = Vec::new();
        for h in 0..100u64 {
            let v = data_rng.gen_range(DOMAIN.0..=DOMAIN.1);
            for s in &mut schemes {
                s.publish(v, h).expect("publish");
            }
            data.push((v, h));
        }

        // Open the split, crash peers mid-partition, then heal and repair.
        for s in &mut schemes {
            s.as_hostile().expect("hostile-wrapped").set_epoch(open);
            let dynamic = s.as_dynamic().expect("filtered to dynamic schemes");
            let mut vrng = simnet::rng_from_seed(seed ^ 0xdead);
            for _ in 0..6 {
                let live = dynamic.live_peers();
                prop_assert!(!live.is_empty());
                let victim = live[vrng.gen_range(0..live.len())];
                dynamic.crash(victim).expect("crash a live peer");
            }
            s.as_hostile().expect("hostile-wrapped").set_epoch(heal);
            s.as_dynamic().expect("dynamic").stabilize();
            s.as_replicated().expect("replicated").re_replicate();
        }

        // Post-heal: identical, exact result sets with full recall.
        let mut qrng = simnet::rng_from_seed(seed ^ 0x57ab);
        for q in 0..6u64 {
            let lo: f64 = qrng.gen_range(DOMAIN.0..DOMAIN.1);
            let hi = (lo + qrng.gen_range(0.1f64..300.0)).min(DOMAIN.1);
            let mut expected: Vec<u64> = data
                .iter()
                .filter(|&&(v, _)| v >= lo && v <= hi)
                .map(|&(_, h)| h)
                .collect();
            expected.sort_unstable();
            for s in &schemes {
                let origin = s.random_origin(&mut qrng);
                let out = s.range_query(origin, lo, hi, q).expect("query");
                prop_assert_eq!(
                    &out.results,
                    &expected,
                    "{} disagrees on [{}, {}] after {} healed",
                    s.scheme_name(),
                    lo,
                    hi,
                    plan_name
                );
                prop_assert!(out.exact, "{} inexact after heal + repair", s.scheme_name());
                prop_assert_eq!(out.peer_recall(), 1.0, "{} recall", s.scheme_name());
            }
        }
    }

    #[test]
    fn whole_domain_query_returns_everything_everywhere(seed in 0u64..10_000) {
        let mut schemes = build_all(seed, 40);
        let mut data_rng = simnet::rng_from_seed(seed ^ 0xa11);
        for h in 0..60u64 {
            let v = data_rng.gen_range(DOMAIN.0..=DOMAIN.1);
            for s in &mut schemes {
                s.publish(v, h).expect("publish");
            }
        }
        for s in &schemes {
            let origin = s.random_origin(&mut data_rng);
            let out = s.range_query(origin, DOMAIN.0, DOMAIN.1, 0).expect("query");
            prop_assert_eq!(
                out.results.len(),
                60,
                "{} dropped records on the whole-domain query",
                s.scheme_name()
            );
        }
    }
}
