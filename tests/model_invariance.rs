//! Property test for the network cost-model layer: the cost model must be
//! an *observer*, never an *actor*.
//!
//! For every registered single-attribute scheme, the same build seed, data
//! set, and query stream are run under every cataloged
//! [`NetModel`](dht_api::NetModel). The contract, across multiple seeds:
//!
//! * hop `delay`, `messages`, `dest_peers`, `reached_peers`, `exact`, and
//!   the full result set are **identical** under every model — edge costs
//!   ride along the realized message paths without perturbing protocol
//!   behavior;
//! * `latency` equals `delay` under the `unit` model for schemes whose
//!   every charged hop is a real wire edge, and never exceeds it for the
//!   layered schemes that charge a response-message hop even when a trie
//!   node / cluster head happens to live at the querying peer;
//! * non-unit models actually move the latency figure somewhere in the
//!   workload (the layer is not a no-op).

use dht_api::{BuildParams, NetModel, RangeOutcome, WorkloadGen, NET_MODEL_NAMES};
use rand::Rng;

const N: usize = 150;
const QUERIES: u64 = 25;
const SEEDS: [u64; 3] = [0x01a7_e4c1, 0xbeef, 7];

/// Runs one scheme under one net model and returns each query's outcome.
fn run_scheme(name: &str, model: &NetModel, seed: u64) -> Vec<RangeOutcome> {
    let registry = armada_experiments::standard_registry();
    let domain = (0.0, 1000.0);
    let params = BuildParams::new(N, domain.0, domain.1).with_object_id_len(24).with_net(*model);
    let mut rng = simnet::rng_from_seed(seed ^ dht_api::fnv1a(name.as_bytes()));
    let mut scheme = registry.build_single(name, &params, &mut rng).expect("scheme builds");
    for h in 0..N as u64 {
        scheme.publish(rng.gen_range(domain.0..=domain.1), h).expect("publish");
    }
    let workload = WorkloadGen::named("mixed", domain).expect("cataloged");
    let mut origin_rng = simnet::rng_from_seed(seed ^ 0x0419);
    (0..QUERIES)
        .map(|q| {
            let (lo, hi) = workload.range(seed, q);
            let origin = scheme.random_origin(&mut origin_rng);
            scheme.range_query(origin, lo, hi, seed.wrapping_add(q)).expect("fault-free query")
        })
        .collect()
}

#[test]
fn hop_metrics_and_results_are_net_model_invariant() {
    let registry = armada_experiments::standard_registry();
    for seed in SEEDS {
        for name in registry.single_names() {
            let unit = run_scheme(name, &NetModel::unit(), seed);
            for model_name in NET_MODEL_NAMES {
                let model = NetModel::named(model_name).expect("cataloged");
                let outcomes = run_scheme(name, &model, seed);
                assert_eq!(outcomes.len(), unit.len());
                for (q, (got, want)) in outcomes.iter().zip(&unit).enumerate() {
                    let at = format!("{name}@{model_name} seed {seed} query {q}");
                    assert_eq!(got.results, want.results, "{at}: results drifted");
                    assert_eq!(got.delay, want.delay, "{at}: hop delay drifted");
                    assert_eq!(got.messages, want.messages, "{at}: messages drifted");
                    assert_eq!(got.dest_peers, want.dest_peers, "{at}: dest_peers drifted");
                    assert_eq!(got.reached_peers, want.reached_peers, "{at}: reached drifted");
                    assert_eq!(got.exact, want.exact, "{at}: exactness drifted");
                }
            }
        }
    }
}

#[test]
fn unit_latency_reproduces_hop_ticks() {
    // Schemes whose every charged hop is a wire edge: latency == delay
    // exactly. The layered schemes (pht-*, squid) charge a response-message
    // hop even for a get whose target node lives at the querying peer, so
    // they satisfy latency ≤ delay instead — never more.
    let exact = ["pira", "seqwalk", "dcf-can", "dcf-can-naive", "skipgraph", "scrap"];
    let registry = armada_experiments::standard_registry();
    for name in registry.single_names() {
        for out in run_scheme(name, &NetModel::unit(), SEEDS[0]) {
            if exact.contains(&name) {
                assert_eq!(out.latency, out.delay, "{name}: unit latency must equal hop delay");
            } else {
                assert!(
                    out.latency <= out.delay,
                    "{name}: unit latency {} exceeds hop delay {}",
                    out.latency,
                    out.delay
                );
            }
        }
    }
}

#[test]
fn non_unit_models_move_the_latency_figure() {
    let registry = armada_experiments::standard_registry();
    for name in registry.single_names() {
        let unit: u64 =
            run_scheme(name, &NetModel::unit(), SEEDS[0]).iter().map(|o| o.latency).sum();
        let wan: u64 = run_scheme(name, &NetModel::wan(), SEEDS[0]).iter().map(|o| o.latency).sum();
        // Every wan edge costs ≥ 30× a unit edge; any routed workload must
        // show it.
        assert!(wan > 10 * unit.max(1), "{name}: wan latency {wan} vs unit {unit}");
    }
}

#[test]
fn straggler_latency_dominates_lan_for_touched_paths() {
    // The straggler model's whole point: a sparse slow-peer set shows up
    // in the tail. Summed over a workload, straggler ≥ lan for every
    // scheme (any path that dodges all stragglers costs lan-like 2-4 ms;
    // one touched straggler adds 120).
    let registry = armada_experiments::standard_registry();
    for name in registry.single_names() {
        let lan: u64 = run_scheme(name, &NetModel::lan(), SEEDS[1]).iter().map(|o| o.latency).sum();
        let straggler: u64 =
            run_scheme(name, &NetModel::straggler(), SEEDS[1]).iter().map(|o| o.latency).sum();
        assert!(straggler >= lan, "{name}: straggler {straggler} < lan {lan}");
    }
}
