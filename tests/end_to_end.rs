//! Cross-crate integration: the full stack (kautz → fissione → armada) and
//! all three schemes answering the same workload identically.

use armada::SingleArmada;
use dht_can::dcf::{self, FloodMode};
use dht_can::{CanConfig, CanNet};
use fissione::FissioneConfig;
use pht::Pht;
use rand::Rng;

fn scores(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = simnet::rng_from_seed(seed);
    (0..n).map(|_| rng.gen_range(0.0..=1000.0)).collect()
}

#[test]
fn all_three_schemes_agree_on_every_query() {
    let mut rng = simnet::rng_from_seed(100);
    let data = scores(800, 101);

    let cfg = FissioneConfig { object_id_len: 32, ..FissioneConfig::default() };
    let mut armada = SingleArmada::build_with(cfg, 250, 0.0, 1000.0, &mut rng).unwrap();
    for &s in &data {
        armada.publish(s);
    }

    let can_cfg = CanConfig { domain_lo: 0.0, domain_hi: 1000.0, ..CanConfig::default() };
    let mut can = CanNet::build(can_cfg, 250, &mut rng).unwrap();
    for (h, &s) in data.iter().enumerate() {
        can.publish(s, h as u64);
    }

    let pht_dht = fissione::FissioneNet::build(cfg, 250, &mut rng).unwrap();
    let mut pht = Pht::new(pht_dht, 0.0, 1000.0);
    for (h, &s) in data.iter().enumerate() {
        pht.insert(s, h as u64);
    }

    for q in 0..25u64 {
        let lo: f64 = rng.gen_range(0.0..900.0);
        let hi = lo + rng.gen_range(0.1..100.0);
        let mut expected: Vec<u64> = data
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s >= lo && s <= hi)
            .map(|(h, _)| h as u64)
            .collect();
        expected.sort_unstable();

        let origin = armada.net().random_peer(&mut rng);
        let pira = armada.pira_query(origin, lo, hi, q).unwrap();
        let pira_ids: Vec<u64> = pira.results.iter().map(|r| r.0).collect();
        assert_eq!(pira_ids, expected, "PIRA on [{lo}, {hi}]");
        assert!(pira.metrics.exact);

        let zo = can.random_zone(&mut rng);
        let dcf = dcf::range_query(&can, zo, lo, hi, q, FloodMode::Directed).unwrap();
        assert_eq!(dcf.results, expected, "DCF on [{lo}, {hi}]");

        let po = {
            use dht_api::Dht;
            pht.dht().random_node(&mut rng)
        };
        let p = pht.range_query(po, lo, hi);
        assert_eq!(p.results, expected, "PHT on [{lo}, {hi}]");
    }
}

#[test]
fn headline_claim_delay_bounded_vs_baselines() {
    // The paper's central comparison, asserted quantitatively: PIRA's delay
    // is flat in range size and under logN; DCF's grows; PHT's is a
    // multiple of logN.
    let mut rng = simnet::rng_from_seed(200);
    let n = 600;
    let cfg = FissioneConfig { object_id_len: 32, ..FissioneConfig::default() };
    let armada = SingleArmada::build_with(cfg, n, 0.0, 1000.0, &mut rng).unwrap();
    let can_cfg = CanConfig { domain_lo: 0.0, domain_hi: 1000.0, ..CanConfig::default() };
    let can = CanNet::build(can_cfg, n, &mut rng).unwrap();
    let log_n = (n as f64).log2();

    let avg = |size: f64, rng: &mut rand::rngs::SmallRng| -> (f64, f64) {
        let queries = 60;
        let (mut p, mut d) = (0f64, 0f64);
        for q in 0..queries {
            let lo = rng.gen_range(0.0..(1000.0 - size));
            let origin = armada.net().random_peer(rng);
            p += f64::from(armada.pira_query(origin, lo, lo + size, q).unwrap().metrics.delay);
            let zo = can.random_zone(rng);
            d += f64::from(
                dcf::range_query(&can, zo, lo, lo + size, q, FloodMode::Directed).unwrap().delay,
            );
        }
        (p / queries as f64, d / queries as f64)
    };
    let (pira_small, dcf_small) = avg(5.0, &mut rng);
    let (pira_large, dcf_large) = avg(300.0, &mut rng);

    assert!(pira_small < log_n && pira_large < log_n, "PIRA below logN");
    assert!(
        (pira_large - pira_small).abs() < 2.0,
        "PIRA flat in range size: {pira_small} vs {pira_large}"
    );
    assert!(dcf_large > dcf_small * 1.5, "DCF grows with range size: {dcf_small} vs {dcf_large}");
    assert!(dcf_small > pira_small, "DCF above PIRA even for small ranges");
}

#[test]
fn umbrella_crate_reexports_everything() {
    // The armada-suite facade exposes each subsystem.
    use armada_suite::{armada as _, chord as _, dht_api as _, dht_can as _};
    use armada_suite::{experiments as _, fissione as _, kautz as _, pht as _, simnet as _};
    let naming = armada_suite::kautz::naming::SingleHash::new(0.0, 1.0, 8).unwrap();
    assert_eq!(naming.k(), 8);
}

#[test]
fn pira_handles_clustered_data_and_point_heavy_workloads() {
    let mut rng = simnet::rng_from_seed(300);
    let cfg = FissioneConfig { object_id_len: 32, ..FissioneConfig::default() };
    let mut armada = SingleArmada::build_with(cfg, 150, 0.0, 1000.0, &mut rng).unwrap();
    // Heavily clustered data: everything between 499 and 501.
    for i in 0..500 {
        armada.publish(499.0 + (i as f64) * 0.004);
    }
    let origin = armada.net().random_peer(&mut rng);
    let out = armada.pira_query(origin, 499.0, 501.0, 1).unwrap();
    assert_eq!(out.results.len(), 500);
    assert!(out.metrics.exact);
    // A disjoint query returns nothing but still terminates bounded.
    let out = armada.pira_query(origin, 0.0, 100.0, 2).unwrap();
    assert!(out.results.is_empty());
    let b = armada.net().peer(origin).unwrap().depth() as u32;
    assert!(out.metrics.delay <= b);
}
