//! The incremental-maintenance equivalence contract, pinned as a property
//! across seeds and churn plans: after any sequence of membership events,
//! the routing state produced by the substrates' incremental repairs —
//! Chord's shifted-arc finger updates, CAN's localized adjacency rebuilds —
//! must be **byte-identical** to a from-scratch recomputation on the same
//! membership, and a query batch driven over either state must produce the
//! same [`DigestReport`].
//!
//! This is what licenses the scaling pass: the flat-storage substrates
//! repair `O(log N)` state per event instead of rebuilding `O(N log N)`,
//! and this test is the proof obligation that the shortcut is invisible.

use armada_suite::chord::ChordNet;
use armada_suite::dht_api::{
    ChurnEvent, ChurnPlan, Dht, DigestReport, ParallelDriver, RangeOutcome, RangeScheme,
    SchemeError, WorkloadGen,
};
use armada_suite::dht_can::{CanConfig, CanNet};
use armada_suite::rand::Rng;
use proptest::prelude::*;

const DOMAIN: (f64, f64) = (0.0, 1000.0);

/// The three plan shapes exercised: pure turnover, bursty growth/drain,
/// and crash-heavy loss.
const PLANS: [&str; 3] = ["steady-churn", "flash-crowd", "massacre"];

/// Replays a plan's event stream straight onto a Chord ring (the same
/// event lists and placement RNG `ChurnPlan::apply` would use).
fn churn_chord(net: &mut ChordNet, plan: &ChurnPlan, seed: u64, epochs: u64) {
    for epoch in 0..epochs {
        let mut rng = plan.epoch_rng(seed, epoch);
        for event in plan.events(epoch) {
            match event {
                ChurnEvent::Join => {
                    net.join(&mut rng);
                }
                ChurnEvent::Leave | ChurnEvent::Crash => {
                    let live: Vec<usize> = net.live_members().collect();
                    let victim = live[rng.gen_range(0..live.len())];
                    let _ = net.remove(victim);
                }
            }
        }
    }
}

/// Replays a plan's event stream onto a CAN tiling.
fn churn_can(net: &mut CanNet, plan: &ChurnPlan, seed: u64, epochs: u64) {
    for epoch in 0..epochs {
        let mut rng = plan.epoch_rng(seed, epoch);
        for event in plan.events(epoch) {
            match event {
                ChurnEvent::Join => {
                    net.join(&mut rng);
                }
                ChurnEvent::Leave => {
                    let live: Vec<usize> = net.live_zones().collect();
                    let victim = live[rng.gen_range(0..live.len())];
                    let _ = net.leave(victim);
                }
                ChurnEvent::Crash => {
                    let live: Vec<usize> = net.live_zones().collect();
                    let victim = live[rng.gen_range(0..live.len())];
                    let _ = net.crash(victim);
                }
            }
        }
    }
}

/// A minimal [`RangeScheme`] over a raw Chord ring: each query routes to
/// the owners of two index-derived ring points, so hop counts — and with
/// them the whole [`DigestReport`] — are a function of the finger tables
/// under test.
struct ChordProbe {
    net: ChordNet,
    records: Vec<(f64, u64)>,
}

impl RangeScheme for ChordProbe {
    fn scheme_name(&self) -> &'static str {
        "chord-probe"
    }

    fn substrate(&self) -> String {
        "chord".into()
    }

    fn degree(&self) -> String {
        "64".into()
    }

    fn node_count(&self) -> usize {
        Dht::node_count(&self.net)
    }

    fn publish(&mut self, value: f64, handle: u64) -> Result<(), SchemeError> {
        self.records.push((value, handle));
        Ok(())
    }

    fn random_origin(&self, rng: &mut armada_suite::rand::rngs::SmallRng) -> usize {
        self.net.random_node(rng)
    }

    fn range_query(
        &self,
        origin: usize,
        lo: f64,
        hi: f64,
        seed: u64,
    ) -> Result<RangeOutcome, SchemeError> {
        let key_lo = armada_suite::dht_api::fnv1a(&lo.to_bits().to_le_bytes()) ^ seed;
        let key_hi = armada_suite::dht_api::fnv1a(&hi.to_bits().to_le_bytes()) ^ seed;
        let a = self.net.route_point(origin, key_lo);
        let b = self.net.route_point(origin, key_hi);
        let mut results: Vec<u64> =
            self.records.iter().filter(|&&(v, _)| v >= lo && v <= hi).map(|&(_, h)| h).collect();
        results.sort_unstable();
        results.dedup();
        let hops = (a.hops + b.hops) as u64;
        Ok(RangeOutcome {
            results,
            delay: a.hops.max(b.hops) as u64,
            latency: hops,
            messages: hops,
            dest_peers: 2,
            reached_peers: 2,
            exact: true,
        })
    }
}

fn probe_digest(net: ChordNet, seed: u64) -> DigestReport {
    let mut probe = ChordProbe { net, records: Vec::new() };
    let mut rng = simnet::rng_from_seed(seed ^ 0x9ec0);
    for h in 0..80u64 {
        probe.publish(rng.gen_range(DOMAIN.0..=DOMAIN.1), h).unwrap();
    }
    let workload = WorkloadGen::named("mixed", DOMAIN).unwrap();
    let driver = ParallelDriver { queries: 48, seed, threads: 4, shard_salt: 0, metrics: false };
    DigestReport::of(&driver.run(&probe, &workload).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn chord_incremental_fingers_equal_full_rebuild(seed in 0u64..10_000) {
        for plan_name in PLANS {
            let plan = ChurnPlan::named(plan_name).unwrap().with_rate(8);
            let mut rng = simnet::rng_from_seed(seed);
            let mut net = ChordNet::build(96, &mut rng);
            churn_chord(&mut net, &plan, seed, 4);

            // Byte-identical routing state: the incremental slab is exactly
            // the from-scratch recomputation, dead rows included.
            let mut rebuilt = net.clone();
            rebuilt.refresh_all_fingers();
            prop_assert_eq!(
                net.finger_slab(),
                rebuilt.finger_slab(),
                "{}: slab diverged (seed {})", plan_name, seed
            );

            // And a driven query batch cannot tell the two apart.
            prop_assert_eq!(
                probe_digest(net, seed),
                probe_digest(rebuilt, seed),
                "{}: digest diverged (seed {})", plan_name, seed
            );
        }
    }

    #[test]
    fn can_incremental_adjacency_equals_full_rebuild(seed in 0u64..10_000) {
        for plan_name in PLANS {
            let plan = ChurnPlan::named(plan_name).unwrap().with_rate(8);
            let mut rng = simnet::rng_from_seed(seed);
            let mut net = CanNet::build(CanConfig::default(), 64, &mut rng).unwrap();
            churn_can(&mut net, &plan, seed, 4);

            net.check_invariants().map_err(TestCaseError::fail)?;
            let mut rebuilt = net.clone();
            rebuilt.refresh_all_adjacency();
            for z in net.live_zones() {
                // List order is history-dependent (splits append to an
                // untouched neighbor's list); membership must be exact.
                let mut incremental = net.neighbors(z).to_vec();
                incremental.sort_unstable();
                prop_assert_eq!(
                    incremental,
                    rebuilt.neighbors(z).to_vec(),
                    "{}: zone {} adjacency diverged (seed {})", plan_name, z, seed
                );
            }
        }
    }
}
