//! The paper's quantitative claims, asserted as integration tests at
//! reduced (but still statistically meaningful) scale.

use armada::{MultiArmada, SingleArmada};
use fissione::FissioneConfig;
use rand::Rng;

fn cfg() -> FissioneConfig {
    FissioneConfig { object_id_len: 100, ..FissioneConfig::default() }
}

/// §4.3.2 / abstract: "Armada can return the results for any range query
/// within 2logN hops".
#[test]
fn claim_worst_case_delay_below_2_log_n() {
    let mut rng = simnet::rng_from_seed(1);
    let n = 1000;
    let armada = SingleArmada::build_with(cfg(), n, 0.0, 1000.0, &mut rng).unwrap();
    let bound = 2.0 * (n as f64).log2();
    for q in 0..300u64 {
        let lo: f64 = rng.gen_range(0.0..1000.0);
        let hi = rng.gen_range(lo..=1000.0);
        let origin = armada.net().random_peer(&mut rng);
        let out = armada.pira_query(origin, lo, hi, q).unwrap();
        assert!(
            f64::from(out.metrics.delay) < bound,
            "delay {} ≥ 2logN {bound} on [{lo}, {hi}]",
            out.metrics.delay
        );
    }
}

/// Abstract: "its average query delay is less than logN".
#[test]
fn claim_average_delay_below_log_n() {
    let mut rng = simnet::rng_from_seed(2);
    let n = 1000;
    let armada = SingleArmada::build_with(cfg(), n, 0.0, 1000.0, &mut rng).unwrap();
    let queries = 400;
    let mut total = 0f64;
    for q in 0..queries {
        let lo: f64 = rng.gen_range(0.0..900.0);
        let origin = armada.net().random_peer(&mut rng);
        total += f64::from(armada.pira_query(origin, lo, lo + 50.0, q).unwrap().metrics.delay);
    }
    let avg = total / queries as f64;
    assert!(avg < (n as f64).log2(), "avg delay {avg}");
}

/// Abstract: "the average message cost of single-attribute range queries is
/// about logN + 2n − 2".
#[test]
fn claim_message_cost_formula() {
    let mut rng = simnet::rng_from_seed(3);
    let n = 1000;
    let armada = SingleArmada::build_with(cfg(), n, 0.0, 1000.0, &mut rng).unwrap();
    let log_n = (n as f64).log2();
    let queries = 300;
    let mut measured = 0f64;
    let mut predicted = 0f64;
    for q in 0..queries {
        let lo: f64 = rng.gen_range(0.0..900.0);
        let origin = armada.net().random_peer(&mut rng);
        let out = armada.pira_query(origin, lo, lo + 100.0, q).unwrap();
        measured += out.metrics.messages as f64;
        predicted += log_n + 2.0 * out.metrics.dest_peers as f64 - 2.0;
    }
    let ratio = measured / predicted;
    assert!(
        (0.7..1.3).contains(&ratio),
        "messages/formula ratio {ratio} strays from logN + 2n − 2"
    );
}

/// §4.3.3: "MesgRatio and IncreRatio are close to 2 and IncreRatio is
/// almost always no more than 2".
#[test]
fn claim_ratios_close_to_two() {
    let mut rng = simnet::rng_from_seed(4);
    let n = 1000;
    let armada = SingleArmada::build_with(cfg(), n, 0.0, 1000.0, &mut rng).unwrap();
    let queries = 300;
    let mut mesg = 0f64;
    let mut incre = 0f64;
    for q in 0..queries {
        let lo: f64 = rng.gen_range(0.0..800.0);
        let origin = armada.net().random_peer(&mut rng);
        let out = armada.pira_query(origin, lo, lo + 150.0, q).unwrap();
        mesg += out.metrics.mesg_ratio();
        incre += out.metrics.incre_ratio(n);
    }
    let mesg = mesg / queries as f64;
    let incre = incre / queries as f64;
    assert!((1.7..2.4).contains(&mesg), "MesgRatio {mesg}");
    assert!((1.6..2.1).contains(&incre), "IncreRatio {incre}");
}

/// §3: FISSIONE's "average degree is 4, its diameter is less than 2logN,
/// and its average routing delay is less than logN".
#[test]
fn claim_substrate_properties() {
    let mut rng = simnet::rng_from_seed(5);
    let n = 1200;
    let net = fissione::FissioneNet::build(cfg(), n, &mut rng).unwrap();
    let log_n = (n as f64).log2();
    let degree = net.degree_stats();
    assert!((degree.total.mean - 4.0).abs() < 0.2, "avg degree {}", degree.total.mean);
    let routing = net.routing_sample(400, &mut rng);
    assert!(routing.hops.mean < log_n, "avg routing {}", routing.hops.mean);
    let dia = net.diameter();
    assert!((dia as f64) < 2.0 * log_n, "diameter {dia}");
}

/// §5: MIRA "is also delay-bounded because its average delay is less than
/// logN and the maximum delay is less than 2logN, regardless of the size of
/// the query space or the specific query".
#[test]
fn claim_mira_bounds() {
    let mut rng = simnet::rng_from_seed(6);
    let n = 800;
    let armada = MultiArmada::build_with(cfg(), n, &[(0.0, 10.0), (0.0, 10.0)], &mut rng).unwrap();
    let log_n = (n as f64).log2();
    for &side in &[0.1f64, 2.0, 9.9] {
        let mut total = 0f64;
        let mut max = 0f64;
        let queries = 100;
        for q in 0..queries {
            let lo0 = rng.gen_range(0.0..(10.0 - side));
            let lo1 = rng.gen_range(0.0..(10.0 - side));
            let origin = armada.net().random_peer(&mut rng);
            let out =
                armada.mira_query(origin, &[(lo0, lo0 + side), (lo1, lo1 + side)], q).unwrap();
            total += f64::from(out.metrics.delay);
            max = max.max(f64::from(out.metrics.delay));
        }
        assert!(total / queries as f64 <= log_n, "avg MIRA delay at side {side}");
        assert!(max < 2.0 * log_n, "max MIRA delay at side {side}");
    }
}

/// §4.2: "the PIRA Algorithm can forward any single-attribute range query
/// exactly to all the destination peers that intersect with the query" —
/// at the paper's own k = 100.
#[test]
fn claim_exactness_at_paper_object_id_length() {
    let mut rng = simnet::rng_from_seed(7);
    let mut armada = SingleArmada::build_with(cfg(), 400, 0.0, 1000.0, &mut rng).unwrap();
    for _ in 0..800 {
        let v: f64 = rng.gen_range(0.0..=1000.0);
        armada.publish(v);
    }
    for q in 0..60u64 {
        let lo: f64 = rng.gen_range(0.0..990.0);
        let hi = lo + rng.gen_range(0.01..200.0f64).min(1000.0 - lo);
        let origin = armada.net().random_peer(&mut rng);
        let out = armada.pira_query(origin, lo, hi, q).unwrap();
        assert!(out.metrics.exact);
        assert_eq!(out.results, armada.expected_results(lo, hi));
    }
}
