#!/usr/bin/env python3
"""Validate a `trace_explain --format jsonl` stream against the committed
trace schema (schemas/trace.schema.json).

Stdlib only — CI runners don't have the `jsonschema` package, so this
carries a small validator for exactly the keyword subset the committed
schema uses: oneOf, allOf, $ref (local `#/$defs/...`), const, enum,
type, minimum, properties, required, additionalProperties: false, and
the boolean schemas `true`/`false`.

Beyond per-line shape, the stream invariants are checked too:

* every event line belongs to a query block opened by a header line;
* within a block, records are sorted by (t, id) and ids are unique.

Usage:
    python3 tools/validate_trace.py trace.jsonl [more.jsonl ...]
    trace_explain --format jsonl ... | python3 tools/validate_trace.py -
"""

import json
import sys
from pathlib import Path

SCHEMA_PATH = Path(__file__).resolve().parent.parent / "schemas" / "trace.schema.json"


def resolve(schema, ref):
    """Resolves a local `#/a/b` JSON pointer inside `schema`."""
    if not ref.startswith("#/"):
        raise ValueError(f"only local refs supported, got {ref!r}")
    node = schema
    for part in ref[2:].split("/"):
        node = node[part]
    return node


def type_ok(value, ty):
    if ty == "object":
        return isinstance(value, dict)
    if ty == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if ty == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if ty == "string":
        return isinstance(value, str)
    if ty == "boolean":
        return isinstance(value, bool)
    if ty == "array":
        return isinstance(value, list)
    if ty == "null":
        return value is None
    raise ValueError(f"unsupported type keyword {ty!r}")


def validate(value, sub, root, path="$"):
    """Returns a list of error strings (empty = valid)."""
    if sub is True:
        return []
    if sub is False:
        return [f"{path}: schema `false` forbids any value"]
    errors = []
    if "$ref" in sub:
        errors += validate(value, resolve(root, sub["$ref"]), root, path)
    if "allOf" in sub:
        for part in sub["allOf"]:
            errors += validate(value, part, root, path)
    if "oneOf" in sub:
        matches = [
            part for part in sub["oneOf"] if not validate(value, part, root, path)
        ]
        if len(matches) != 1:
            errors.append(f"{path}: matched {len(matches)} of the oneOf branches, want exactly 1")
    if "const" in sub and value != sub["const"]:
        errors.append(f"{path}: expected const {sub['const']!r}, got {value!r}")
    if "enum" in sub and value not in sub["enum"]:
        errors.append(f"{path}: {value!r} not in enum {sub['enum']}")
    if "type" in sub and not type_ok(value, sub["type"]):
        errors.append(f"{path}: expected type {sub['type']}, got {type(value).__name__}")
    if "minimum" in sub and isinstance(value, (int, float)) and not isinstance(value, bool):
        if value < sub["minimum"]:
            errors.append(f"{path}: {value} < minimum {sub['minimum']}")
    if isinstance(value, dict):
        props = sub.get("properties", {})
        for key, psub in props.items():
            if key in value:
                errors += validate(value[key], psub, root, f"{path}.{key}")
        for key in sub.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required property {key!r}")
        if sub.get("additionalProperties") is False:
            for key in value:
                if key not in props:
                    errors.append(f"{path}: unexpected property {key!r}")
    return errors


def check_stream(name, lines, schema):
    """Validates one jsonl stream; returns (#lines, #queries, errors)."""
    errors = []
    queries = 0
    lineno = 0
    in_block = False
    last_key = None
    seen_ids = set()
    for lineno, raw in enumerate(lines, start=1):
        raw = raw.strip()
        if not raw:
            continue
        where = f"{name}:{lineno}"
        try:
            value = json.loads(raw)
        except json.JSONDecodeError as e:
            errors.append(f"{where}: not JSON: {e}")
            continue
        errors.extend(f"{where}: {e}" for e in validate(value, schema, schema))
        if not isinstance(value, dict):
            continue
        if value.get("type") == "query":
            queries += 1
            in_block = True
            last_key = None
            seen_ids = set()
        elif "t" in value and "id" in value:
            if not in_block:
                errors.append(f"{where}: event line before any query header")
            key = (value["t"], value["id"])
            if last_key is not None and key < last_key:
                errors.append(f"{where}: records out of (t, id) order: {key} after {last_key}")
            last_key = key
            if value["id"] in seen_ids:
                errors.append(f"{where}: duplicate event id {value['id']} within one query")
            seen_ids.add(value["id"])
    return lineno, queries, errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    schema = json.loads(SCHEMA_PATH.read_text())
    failed = False
    for arg in argv[1:]:
        if arg == "-":
            name, lines = "<stdin>", sys.stdin.readlines()
        else:
            name, lines = arg, Path(arg).read_text().splitlines()
        nlines, queries, errors = check_stream(name, lines, schema)
        for e in errors[:50]:
            print(f"error: {e}", file=sys.stderr)
        if len(errors) > 50:
            print(f"error: ... and {len(errors) - 50} more", file=sys.stderr)
        if errors:
            failed = True
        else:
            print(f"ok: {name}: {nlines} lines, {queries} queries, schema-valid")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
