//! Umbrella crate for the Armada reproduction suite.
//!
//! Re-exports every crate in the workspace so examples and downstream users
//! can depend on a single package:
//!
//! * [`kautz`] — Kautz strings, regions, graphs, partition trees, naming.
//! * [`simnet`] — deterministic discrete-event overlay simulator.
//! * [`fissione`] — the FISSIONE constant-degree DHT substrate.
//! * [`armada`] — the paper's contribution: FRT, PIRA, MIRA range queries.
//! * [`dht_api`] — common DHT abstractions for layered schemes.
//! * [`dht_can`] — CAN + Hilbert mapping + DCF range queries (baseline).
//! * [`pht`] — Prefix Hash Tree range queries over any DHT (baseline).
//! * [`chord`] — Chord DHT (O(log N) degree substrate).
//! * [`skipgraph`] — Skip Graph: the O(logN + n) range-query class.
//! * [`sfc`] — z-order curve utilities shared by Squid and SCRAP.
//! * [`squid`] — Squid: SFC cluster refinement over Chord (Table 1 row).
//! * [`scrap`] — SCRAP: z-order over Skip Graph (Table 1 row).
//! * [`experiments`] — runners regenerating every figure/table of the paper.

#![forbid(unsafe_code)]

pub use armada;
pub use armada_experiments as experiments;
pub use chord;
pub use dht_api;
pub use dht_can;
pub use fissione;
pub use kautz;
pub use pht;
pub use rand;
pub use scrap;
pub use sfc;
pub use simnet;
pub use skipgraph;
pub use squid;
