//! Quickstart: build a range-query scheme by name through the unified API,
//! publish scored documents, and run a delay-bounded PIRA range query.
//!
//! Run with: `cargo run --release --example quickstart`
//! Try another scheme: `cargo run --release --example quickstart -- skipgraph`
//! See where every hop went: `cargo run --release --example quickstart -- pira --trace`

use armada_suite::dht_api::{BuildParams, QueryDriver};
use armada_suite::experiments::standard_registry;
use rand::Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let registry = standard_registry();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let trace = args.iter().any(|a| a == "--trace");
    let name =
        args.iter().find(|a| !a.starts_with("--")).cloned().unwrap_or_else(|| "pira".to_string());
    let mut rng = simnet::rng_from_seed(2006);

    // A 500-peer P2P network over the attribute space [0, 1000] — the
    // paper's simulation setup (§4.3.3).
    println!("available schemes : {:?}", registry.single_names());
    println!("building a 500-peer {name} system…");
    let params = BuildParams::new(500, 0.0, 1000.0).with_trace(trace);
    let mut scheme = registry.build_single(&name, &params, &mut rng)?;
    println!(
        "  substrate: {}, degree: {}, peers: {}",
        scheme.substrate(),
        scheme.degree(),
        scheme.node_count()
    );

    // Publish 2000 documents with random scores.
    for handle in 0..2000u64 {
        let score: f64 = rng.gen_range(0.0..=1000.0);
        scheme.publish(score, handle)?;
    }
    println!("  published 2000 records");

    // The paper's motivating query: "70 ≤ score ≤ 80". With `--trace` the
    // same call also returns its causal cost tree — the outcome is
    // identical either way, tracing observes without perturbing.
    let origin = scheme.random_origin(&mut rng);
    let outcome = if trace {
        let (outcome, trace) = scheme.trace_query(origin, 70.0, 80.0, 1)?;
        println!("\nper-hop explain tree for the query:");
        print!("{}", trace.explain_text());
        outcome
    } else {
        scheme.range_query(origin, 70.0, 80.0, 1)?
    };

    let log_n = (scheme.node_count() as f64).log2();
    println!("\n{name} range query [70, 80] from peer {origin}:");
    println!("  matching records : {}", outcome.results.len());
    println!("  destination peers: {}", outcome.dest_peers);
    println!("  exact            : {}", outcome.exact);
    println!(
        "  delay            : {} hops (logN = {log_n:.1}, 2·logN = {:.1})",
        outcome.delay,
        2.0 * log_n
    );
    println!("  messages         : {} (MesgRatio = {:.2})", outcome.messages, outcome.mesg_ratio());

    // A batched workload through the generic driver.
    let report = QueryDriver::new(200).run(scheme.as_ref(), &mut rng, |rng| {
        let lo = rng.gen_range(0.0..990.0);
        (lo, lo + 10.0)
    })?;
    println!("\n200-query batched workload (range size 10):");
    println!("  avg delay  : {:.2} hops (max {:.0})", report.delay.mean, report.delay.max);
    println!("  avg msgs   : {:.1}", report.messages.mean);
    println!("  exact rate : {:.2}", report.exact_rate);
    Ok(())
}
