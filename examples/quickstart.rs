//! Quickstart: build a FISSIONE network, publish scored documents, and run
//! a delay-bounded PIRA range query.
//!
//! Run with: `cargo run --release --example quickstart`

use armada::SingleArmada;
use rand::Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = simnet::rng_from_seed(2006);

    // A 500-peer P2P network over the attribute space [0, 1000] — the
    // paper's simulation setup (§4.3.3).
    println!("building a 500-peer FISSIONE network…");
    let mut armada = SingleArmada::build(500, 0.0, 1000.0, &mut rng)?;
    let report = armada.net().check_invariants()?;
    println!(
        "  peers: {}, peer-id depth: {}..{}, neighborhood violations: {}",
        report.peers, report.min_depth, report.max_depth, report.neighborhood_violations
    );

    // Publish 2000 documents with random scores.
    for _ in 0..2000 {
        let score: f64 = rng.gen_range(0.0..=1000.0);
        armada.publish(score);
    }
    println!("  published {} records", armada.record_count());

    // The paper's motivating query: "70 ≤ score ≤ 80".
    let origin = armada.net().random_peer(&mut rng);
    let outcome = armada.pira_query(origin, 70.0, 80.0, 1)?;

    let log_n = (armada.net().len() as f64).log2();
    println!("\nPIRA range query [70, 80] from peer {origin}:");
    println!("  matching records : {}", outcome.results.len());
    println!("  destination peers: {}", outcome.metrics.dest_peers);
    println!("  exact            : {}", outcome.metrics.exact);
    println!(
        "  delay            : {} hops (logN = {log_n:.1}, bound 2·logN = {:.1})",
        outcome.metrics.delay,
        2.0 * log_n
    );
    println!(
        "  messages         : {} (≈ logN + 2n − 2 = {:.0})",
        outcome.metrics.messages,
        log_n + 2.0 * outcome.metrics.dest_peers as f64 - 2.0
    );

    // Verify against the ground truth.
    assert_eq!(outcome.results, armada.expected_results(70.0, 80.0));
    assert!(f64::from(outcome.metrics.delay) < 2.0 * log_n);
    println!("\nresult set verified against a direct scan ✓");
    Ok(())
}
