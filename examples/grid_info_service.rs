//! Grid information service: the paper's multi-attribute motivating example
//! ("1GB ≤ Memory ≤ 4GB and 50GB ≤ disk ≤ 200GB", §1) served through the
//! unified multi-attribute interface — pick `mira`, `squid`, or `scrap` at
//! runtime.
//!
//! Run with: `cargo run --release --example grid_info_service`
//! Try another scheme: `cargo run --release --example grid_info_service -- squid`

use armada_suite::dht_api::MultiBuildParams;
use armada_suite::experiments::standard_registry;
use rand::Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let registry = standard_registry();
    let name = std::env::args().nth(1).unwrap_or_else(|| "mira".to_string());
    let mut rng = simnet::rng_from_seed(42);

    // 800 peers indexing grid machines by (memory MB, disk GB).
    println!("available multi-attribute schemes: {:?}", registry.multi_names());
    println!("building an 800-peer {name} grid information service…");
    let params = MultiBuildParams::new(800, &[(0.0, 16384.0), (0.0, 2000.0)]);
    let mut grid = registry.build_multi(&name, &params, &mut rng)?;

    // Register 5000 machines with a realistic mixture of configurations.
    let mem_tiers = [512.0, 1024.0, 2048.0, 4096.0, 8192.0, 16384.0];
    let mut machines = Vec::new();
    for id in 0..5000u64 {
        let mem = mem_tiers[rng.gen_range(0..mem_tiers.len())] * rng.gen_range(0.9..1.0);
        let disk: f64 = rng.gen_range(20.0..2000.0);
        grid.publish_point(&[mem, disk], id)?;
        machines.push([mem, disk]);
    }
    println!("  registered {} machines", machines.len());

    // The paper's query: 1GB ≤ memory ≤ 4GB and 50GB ≤ disk ≤ 200GB.
    let query = [(1024.0, 4096.0), (50.0, 200.0)];
    let origin = grid.random_origin(&mut rng);
    let outcome = grid.rect_query(origin, &query, 7)?;

    let log_n = (grid.node_count() as f64).log2();
    println!("\n{name} query {{1GB ≤ mem ≤ 4GB, 50GB ≤ disk ≤ 200GB}}:");
    println!("  matching machines: {}", outcome.results.len());
    println!("  destination peers: {}", outcome.dest_peers);
    println!(
        "  delay            : {} hops (logN = {log_n:.1}, 2·logN = {:.1})",
        outcome.delay,
        2.0 * log_n
    );
    println!("  messages         : {}", outcome.messages);
    println!("  exact            : {}", outcome.exact);

    // Show a few results.
    for &id in outcome.results.iter().take(5) {
        let p = &machines[id as usize];
        println!("    machine#{id}: memory {:.0} MB, disk {:.0} GB", p[0], p[1]);
    }

    // Verify against a direct scan.
    let expected: Vec<u64> = machines
        .iter()
        .enumerate()
        .filter(|(_, p)| p.iter().zip(query.iter()).all(|(&v, &(lo, hi))| v >= lo && v <= hi))
        .map(|(id, _)| id as u64)
        .collect();
    assert_eq!(outcome.results, expected);
    println!("\nresult set verified against a direct scan ✓");
    Ok(())
}
