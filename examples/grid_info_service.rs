//! Grid information service: the paper's multi-attribute motivating example
//! ("1GB ≤ Memory ≤ 4GB and 50GB ≤ disk ≤ 200GB", §1) served by MIRA.
//!
//! Run with: `cargo run --release --example grid_info_service`

use armada::MultiArmada;
use rand::Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = simnet::rng_from_seed(42);

    // 800 peers indexing grid machines by (memory MB, disk GB).
    println!("building an 800-peer grid information service…");
    let mut grid = MultiArmada::build(800, &[(0.0, 16384.0), (0.0, 2000.0)], &mut rng)?;

    // Register 5000 machines with a realistic mixture of configurations.
    let mem_tiers = [512.0, 1024.0, 2048.0, 4096.0, 8192.0, 16384.0];
    for _ in 0..5000 {
        let mem = mem_tiers[rng.gen_range(0..mem_tiers.len())] * rng.gen_range(0.9..1.0);
        let disk: f64 = rng.gen_range(20.0..2000.0);
        grid.publish(&[mem, disk])?;
    }
    println!("  registered {} machines", grid.record_count());

    // The paper's query: 1GB ≤ memory ≤ 4GB and 50GB ≤ disk ≤ 200GB.
    let query = [(1024.0, 4096.0), (50.0, 200.0)];
    let origin = grid.net().random_peer(&mut rng);
    let outcome = grid.mira_query(origin, &query, 7)?;

    let log_n = (grid.net().len() as f64).log2();
    println!("\nMIRA query {{1GB ≤ mem ≤ 4GB, 50GB ≤ disk ≤ 200GB}}:");
    println!("  matching machines: {}", outcome.results.len());
    println!("  destination peers: {}", outcome.metrics.dest_peers);
    println!(
        "  delay            : {} hops (logN = {log_n:.1}, bound 2·logN = {:.1})",
        outcome.metrics.delay,
        2.0 * log_n
    );
    println!("  messages         : {}", outcome.metrics.messages);
    println!("  exact            : {}", outcome.metrics.exact);

    // Show a few results.
    for &r in outcome.results.iter().take(5) {
        let p = grid.point(r);
        println!("    {r}: memory {:.0} MB, disk {:.0} GB", p[0], p[1]);
    }

    assert_eq!(outcome.results, grid.expected_results(&query));
    assert!(f64::from(outcome.metrics.delay) < 2.0 * log_n);

    // Delay stays bounded even for a huge query volume — the property that
    // distinguishes Armada from DCF-CAN and PHT.
    let huge = [(0.0, 16384.0), (0.0, 2000.0)];
    let big = grid.mira_query(origin, &huge, 8)?;
    println!(
        "\nwhole-space query: {} peers answered within {} hops (still < 2·logN = {:.1})",
        big.metrics.reached_peers,
        big.metrics.delay,
        2.0 * log_n
    );
    assert!(f64::from(big.metrics.delay) < 2.0 * log_n);
    Ok(())
}
