//! Churn and fault tolerance through the unified API: peers join, leave and
//! crash between query epochs while the system keeps answering range
//! queries; stabilization repairs what crashes lost; lossy links degrade
//! recall gracefully.
//!
//! Everything here goes through the public surface — the registry, the
//! `DynamicScheme` capability hook, `ChurnPlan`, and the epoch-mode
//! `ParallelDriver` — so any dynamic scheme can ride along.
//!
//! Run with: `cargo run --release --example churn_and_faults`
//! Other schemes: `cargo run --release --example churn_and_faults -- pira pht-chord`
//! Explain the first query hop by hop: add `--trace`

use armada_suite::dht_api::{BuildParams, ChurnPlan, ParallelDriver, SchemeError, WorkloadGen};
use armada_suite::experiments::standard_registry;
use rand::Rng;
use simnet::FaultPlan;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let registry = standard_registry();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let trace = args.iter().any(|a| a == "--trace");
    let mut names: Vec<String> = args.into_iter().filter(|a| !a.starts_with("--")).collect();
    if names.is_empty() {
        names = vec!["pira".into(), "dcf-can".into()];
    }
    println!("available schemes : {:?}", registry.single_names());

    for name in &names {
        println!("\n=== {name} ===");
        let mut rng = simnet::rng_from_seed(13);
        let params = BuildParams::new(300, 0.0, 1000.0).with_trace(trace);
        let mut scheme = registry.build_single(name, &params, &mut rng)?;
        let mut data = Vec::new();
        for h in 0..1000u64 {
            let v: f64 = rng.gen_range(0.0..=1000.0);
            scheme.publish(v, h)?;
            data.push((v, h));
        }

        if scheme.as_dynamic().is_none() {
            println!("  {name} does not support dynamics — skipping the churn phase");
            continue;
        }

        // Epoch-driven churn: the crash-heavy plan with deferred repair, so
        // the per-epoch series shows answers dipping and recovering.
        println!("querying across 6 epochs under the `massacre` churn plan (rate 20):");
        let plan = ChurnPlan::named("massacre")?.with_rate(20);
        let driver = ParallelDriver::new(150).with_seed(13);
        let workload = WorkloadGen::named("uniform", (0.0, 1000.0))?;

        // With `--trace`, explain the workload's first query — the exact
        // (origin, range, seed) the driver is about to run as query 0 —
        // before churn starts mutating the membership.
        if trace {
            let (out, qtrace) = driver.trace_one(scheme.as_ref(), &workload, 0)?;
            println!(
                "  explain tree for query 0 ({} results, delay {} hops):",
                out.results.len(),
                out.delay
            );
            for line in qtrace.explain_text().lines() {
                println!("    {line}");
            }
        }

        let report = driver.run_epochs(scheme.as_mut(), &workload, &plan, 6)?;
        for e in &report.epochs {
            println!(
                "  epoch {}: {:>3} peers | {:>2} churn events{} | avg delay {:>5.2} | \
                 results {:>4}",
                e.epoch,
                e.peers,
                e.churn.events(),
                if e.churn.stabilized { ", stabilized  " } else { "              " },
                e.delay_mean,
                e.results_returned,
            );
        }

        // An explicit stabilize restores the exactness contract.
        let dynamic = scheme.as_dynamic().expect("checked above");
        let repairs = dynamic.stabilize();
        println!("  final stabilize: {repairs} repair ops");
        let origin = scheme.random_origin(&mut rng);
        let out = scheme.range_query(origin, 250.0, 400.0, 1)?;
        let mut expect: Vec<u64> =
            data.iter().filter(|&&(v, _)| (250.0..=400.0).contains(&v)).map(|&(_, h)| h).collect();
        expect.sort_unstable();
        assert_eq!(out.results, expect, "post-stabilize queries are exact again");
        println!(
            "  post-stabilize query [250, 400]: {} results, exact = {}, delay = {} hops",
            out.results.len(),
            out.exact,
            out.delay
        );

        // Lossy network: recall degrades smoothly, never catastrophically.
        println!("  recall under message loss (100 queries each):");
        for p in [0.0, 0.05, 0.10, 0.20] {
            let faults = FaultPlan::with_drop_prob(p);
            let mut recall_sum = 0.0;
            let mut supported = true;
            for q in 0..100 {
                let lo: f64 = rng.gen_range(0.0..900.0);
                let origin = scheme.random_origin(&mut rng);
                match scheme.range_query_with_faults(origin, lo, lo + 100.0, q, &faults) {
                    Ok(out) => recall_sum += out.peer_recall(),
                    Err(SchemeError::Unsupported { .. }) => {
                        supported = false;
                        break;
                    }
                    Err(e) => return Err(e.into()),
                }
            }
            if supported {
                println!(
                    "    drop {:>3.0}% → avg peer recall {:.3}",
                    p * 100.0,
                    recall_sum / 100.0
                );
            } else {
                println!("    {name} does not model per-query fault injection");
                break;
            }
        }
    }
    Ok(())
}
