//! Churn and fault tolerance: peers join, leave and crash while the system
//! keeps answering range queries; lossy links degrade recall gracefully.
//!
//! Run with: `cargo run --release --example churn_and_faults`

use armada::SingleArmada;
use rand::Rng;
use simnet::FaultPlan;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = simnet::rng_from_seed(13);

    println!("building a 300-peer network…");
    let mut armada = SingleArmada::build(300, 0.0, 1000.0, &mut rng)?;
    for _ in 0..1000 {
        let v: f64 = rng.gen_range(0.0..=1000.0);
        armada.publish(v);
    }

    // Churn storm: 150 joins, 100 graceful leaves, 20 crashes.
    println!("churning: +150 joins, −100 leaves, −20 crashes…");
    for _ in 0..150 {
        armada.net_mut().join(&mut rng);
    }
    for _ in 0..100 {
        let victim = armada.net().random_peer(&mut rng);
        let _ = armada.net_mut().leave(victim);
    }
    let mut lost = 0;
    for _ in 0..20 {
        let victim = armada.net().random_peer(&mut rng);
        if let Ok(n) = armada.net_mut().crash(victim) {
            lost += n;
        }
    }
    let moved = armada.net_mut().stabilize();
    let report = armada.net().check_invariants()?;
    println!(
        "  now {} peers, {} records lost to crashes, {} balancing migrations, \
         {} neighborhood violations",
        report.peers, lost, moved, report.neighborhood_violations
    );

    // Queries remain exact after churn (the cover invariant guarantees it).
    let origin = armada.net().random_peer(&mut rng);
    let out = armada.pira_query(origin, 250.0, 400.0, 1)?;
    println!(
        "\npost-churn query [250, 400]: {} results, exact = {}, delay = {} hops",
        out.results.len(),
        out.metrics.exact,
        out.metrics.delay
    );
    assert!(out.metrics.exact);
    assert_eq!(out.results, armada.expected_results(250.0, 400.0));

    // Lossy network: recall degrades smoothly, never catastrophically.
    println!("\nrecall under message loss (100 queries each):");
    for p in [0.0, 0.05, 0.10, 0.20] {
        let faults = FaultPlan::with_drop_prob(p);
        let mut recall_sum = 0.0;
        for q in 0..100 {
            let lo: f64 = rng.gen_range(0.0..900.0);
            let origin = armada.net().random_peer(&mut rng);
            let out = armada.pira_query_with_faults(origin, lo, lo + 100.0, q, &faults)?;
            recall_sum += out.metrics.peer_recall();
        }
        println!("  drop {:>3.0}% → avg peer recall {:.3}", p * 100.0, recall_sum / 100.0);
    }

    // Exact-match lookups detour around crashed peers.
    println!("\nfault-tolerant lookup (DFS detours around a crashed next hop):");
    let target = kautz::KautzStr::random(2, armada.net().config().object_id_len, &mut rng);
    let from = armada.net().random_peer(&mut rng);
    let clean = armada.net().route(from, &target)?;
    if clean.hops() > 1 {
        let mut faults = FaultPlan::new();
        faults.crash(clean.path()[1]);
        match armada.net().route_avoiding(from, &target, &faults) {
            Ok(detour) => println!(
                "  clean route: {} hops; with first hop crashed: {} hops, same owner = {}",
                clean.hops(),
                detour.hops(),
                detour.dest() == clean.dest()
            ),
            Err(e) => println!("  detour failed: {e}"),
        }
    }
    Ok(())
}
