//! P2P data management: the paper's "70 ≤ score ≤ 80" example executed by
//! every registered general scheme on identical data, comparing delay and
//! message cost side by side — one loop over registry names, zero
//! scheme-specific glue.
//!
//! Run with: `cargo run --release --example p2p_database`

use armada_suite::dht_api::BuildParams;
use armada_suite::experiments::standard_registry;
use rand::Rng;

const N: usize = 1000;
const RECORDS: usize = 4000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let registry = standard_registry();
    let mut rng = simnet::rng_from_seed(70);
    let scores: Vec<f64> = (0..RECORDS).map(|_| rng.gen_range(0.0..=100.0) * 10.0).collect();

    // The query: 700 ≤ score ≤ 800 (the paper's 70–80 on a 0–100 scale).
    let (lo, hi) = (700.0, 800.0);
    let expected: Vec<u64> = {
        let mut v: Vec<u64> = scores
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s >= lo && s <= hi)
            .map(|(h, _)| h as u64)
            .collect();
        v.sort_unstable();
        v
    };
    let log_n = (N as f64).log2();
    println!("building {N}-peer systems over the same {RECORDS} records…");
    println!("query [{lo}, {hi}] — {} matching records expected", expected.len());
    println!("  logN = {log_n:.1}, 2·logN = {:.1}\n", 2.0 * log_n);
    println!("| scheme | substrate | results | delay (hops) | messages | exact |");
    println!("|---|---|---|---|---|---|");

    let params = BuildParams::new(N, 0.0, 1000.0);
    for name in registry.single_names() {
        let mut scheme = registry.build_single(name, &params, &mut rng)?;
        for (h, &s) in scores.iter().enumerate() {
            scheme.publish(s, h as u64)?;
        }
        let origin = scheme.random_origin(&mut rng);
        let out = scheme.range_query(origin, lo, hi, 1)?;
        println!(
            "| {name} | {} | {} | {} | {} | {} |",
            scheme.substrate(),
            out.results.len(),
            out.delay,
            out.messages,
            out.exact
        );
        assert_eq!(out.results, expected, "{name} returned a wrong result set");
    }

    println!(
        "\nall schemes agree on the result set; only Armada/PIRA stays below \
         2·logN = {:.1} hops regardless of the range.",
        2.0 * log_n
    );
    Ok(())
}
