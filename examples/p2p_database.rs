//! P2P data management: the paper's "70 ≤ score ≤ 80" example executed by
//! all three implemented general schemes — Armada/PIRA, DCF-CAN and PHT —
//! on identical data, comparing delay and message cost side by side.
//!
//! Run with: `cargo run --release --example p2p_database`

use armada::SingleArmada;
use dht_can::dcf::{self, FloodMode};
use dht_can::{CanConfig, CanNet};
use pht::Pht;
use rand::Rng;

const N: usize = 1000;
const RECORDS: usize = 4000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = simnet::rng_from_seed(70);
    let scores: Vec<f64> = (0..RECORDS).map(|_| rng.gen_range(0.0..=100.0) * 10.0).collect();

    println!("building three {N}-peer systems over the same {RECORDS} records…\n");

    // Armada over FISSIONE.
    let mut armada = SingleArmada::build(N, 0.0, 1000.0, &mut rng)?;
    for &s in &scores {
        armada.publish(s);
    }

    // DCF over CAN.
    let can_cfg = CanConfig { domain_lo: 0.0, domain_hi: 1000.0, ..CanConfig::default() };
    let mut can = CanNet::build(can_cfg, N, &mut rng)?;
    for (h, &s) in scores.iter().enumerate() {
        can.publish(s, h as u64);
    }

    // PHT over FISSIONE (the "any DHT" layered scheme).
    let pht_dht = fissione::FissioneNet::build(fissione::FissioneConfig::default(), N, &mut rng)?;
    let mut pht = Pht::new(pht_dht, 0.0, 1000.0);
    for (h, &s) in scores.iter().enumerate() {
        pht.insert(s, h as u64);
    }

    // The query: 700 ≤ score ≤ 800 (the paper's 70–80 on a 0–100 scale).
    let (lo, hi) = (700.0, 800.0);
    let expected: Vec<u64> = {
        let mut v: Vec<u64> = scores
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s >= lo && s <= hi)
            .map(|(h, _)| h as u64)
            .collect();
        v.sort_unstable();
        v
    };
    println!("query [{lo}, {hi}] — {} matching records expected", expected.len());
    let log_n = (N as f64).log2();
    println!("  logN = {log_n:.1}\n");
    println!("| scheme | results | delay (hops) | messages | exact |");
    println!("|---|---|---|---|---|");

    // PIRA.
    let origin = armada.net().random_peer(&mut rng);
    let out = armada.pira_query(origin, lo, hi, 1)?;
    let pira_results: Vec<u64> = out.results.iter().map(|r| r.0).collect();
    println!(
        "| Armada/PIRA | {} | {} | {} | {} |",
        out.results.len(),
        out.metrics.delay,
        out.metrics.messages,
        out.metrics.exact
    );
    assert_eq!(pira_results, expected);

    // DCF-CAN.
    let can_origin = can.random_zone(&mut rng);
    let dcf_out = dcf::range_query(&can, can_origin, lo, hi, 1, FloodMode::Directed)?;
    println!(
        "| DCF-CAN | {} | {} | {} | {} |",
        dcf_out.results.len(),
        dcf_out.delay,
        dcf_out.messages,
        dcf_out.exact
    );
    assert_eq!(dcf_out.results, expected);

    // PHT.
    let pht_origin = {
        use dht_api::Dht;
        pht.dht().random_node(&mut rng)
    };
    let pht_out = pht.range_query(pht_origin, lo, hi);
    println!(
        "| PHT/FissionE | {} | {} | {} | true |",
        pht_out.results.len(),
        pht_out.delay,
        pht_out.messages
    );
    assert_eq!(pht_out.results, expected);

    println!(
        "\nall three schemes agree on the result set; only PIRA stays below \
         2·logN = {:.1} hops regardless of the range.",
        2.0 * log_n
    );
    Ok(())
}
