//! Top-k queries — the paper's §6 future work, implemented: a distributed
//! leaderboard answering "the k best scores" via geometrically expanding
//! delay-bounded PIRA probes.
//!
//! Run with: `cargo run --release --example top_k_leaderboard`

use armada::SingleArmada;
use rand::Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = simnet::rng_from_seed(66);

    println!("building a 600-peer leaderboard over scores [0, 1000]…");
    let mut board = SingleArmada::build(600, 0.0, 1000.0, &mut rng)?;
    for _ in 0..10_000 {
        // Scores cluster low: top-k must dig into a thin right tail.
        let s: f64 = rng.gen_range(0.0f64..1.0).powi(2) * 1000.0;
        board.publish(s);
    }
    println!("  published {} scores", board.record_count());

    let origin = board.net().random_peer(&mut rng);
    let log_n = (board.net().len() as f64).log2();

    for k in [3usize, 10, 100] {
        let out = board.top_k(origin, k, k as u64)?;
        let values: Vec<String> =
            out.results.iter().take(3).map(|&r| format!("{:.2}", board.value(r))).collect();
        println!(
            "\ntop-{k}: {} probes, {} hops total (per-probe bound 2·logN = {:.1}), {} messages",
            out.probes,
            out.delay,
            2.0 * log_n,
            out.messages
        );
        println!("  best: {} …", values.join(", "));
        assert_eq!(out.results, board.expected_top_k(1000.0, k));
    }

    // Conditional variant: the best 5 scores at or below 500.
    let out = board.top_k_below(origin, 500.0, 5, 99)?;
    println!(
        "\ntop-5 ≤ 500: {:?}",
        out.results.iter().map(|&r| board.value(r)).collect::<Vec<_>>()
    );
    assert_eq!(out.results, board.expected_top_k(500.0, 5));
    println!("\nall results verified against direct scans ✓");
    Ok(())
}
